package timer

import (
	"fmt"

	"odrips/internal/clock"
	"odrips/internal/fixedpoint"
	"odrips/internal/sim"
)

// CalibrationResult holds the outcome of a Step calibration run (§4.1.3).
type CalibrationResult struct {
	Step     fixedpoint.Q
	NFast    uint64       // fast-clock edges counted
	NSlow    uint64       // slow-clock window, 2^f cycles
	Window   sim.Duration // wall (simulated) duration of the calibration
	IntBits  uint         // m
	FracBits uint         // f
}

// DriftPPB returns the worst-case counting drift, in parts per billion,
// implied by quantizing the measured ratio to f fractional bits: the Step
// underestimates the true ratio by less than 2^-f per slow cycle, which is
// (2^-f / ratio) per fast cycle.
func (r CalibrationResult) DriftPPB() float64 {
	// ratio * 2^f is exactly Step.Raw, so the bound needs no float rendering
	// of the Step itself.
	if r.Step.Raw == 0 {
		return 0
	}
	return 1e9 / float64(r.Step.Raw)
}

// PlanCalibration derives the fixed-point geometry for a fast/slow clock
// pair per the paper's Equations 2–4: m integer bits to hold the frequency
// ratio, f fractional bits for 1 ppb precision, and the calibration window
// N_slow = 2^f slow cycles.
func PlanCalibration(fastHz, slowHz uint64) (intBits, fracBits uint, window uint64) {
	m := fixedpoint.IntBitsNeeded(fastHz, slowHz)
	f := fixedpoint.FracBitsNeeded(fastHz, slowHz)
	return m, f, 1 << f
}

// CalibrateNow measures the Step immediately by counting fast edges across
// the next N_slow = 2^f slow cycles, using the oscillators' exact edge
// arithmetic. It is the zero-latency variant used by tests and by platform
// bring-up when the simulation has no interest in the 64-second calibration
// wall time. Both oscillators must be stable.
func CalibrateNow(sched *sim.Scheduler, fast, slow *clock.Oscillator) (CalibrationResult, error) {
	if !fast.Stable() || !slow.Stable() {
		return CalibrationResult{}, fmt.Errorf("timer: calibration requires both oscillators stable")
	}
	m, f, nSlow := PlanCalibration(fast.NominalHz(), slow.NominalHz())
	k0, t0, ok := slow.NextEdge(sched.Now())
	if !ok {
		return CalibrationResult{}, fmt.Errorf("timer: slow oscillator produced no edge")
	}
	tEnd := slow.EdgeTime(k0 + nSlow)
	nFast := fast.EdgesBetween(t0, tEnd)
	// Divide nFast by 2^f by placing the fixed point: raw = nFast.
	if nFast>>(m+f) != 0 {
		return CalibrationResult{}, fmt.Errorf("timer: measured ratio overflows %d+%d bits (N_fast=%d)", m, f, nFast)
	}
	return CalibrationResult{
		Step:     fixedpoint.New(nFast, f),
		NFast:    nFast,
		NSlow:    nSlow,
		Window:   tEnd.Sub(t0),
		IntBits:  m,
		FracBits: f,
	}, nil
}

// Calibrator runs a calibration with its real wall duration: it schedules
// the window end on the simulation clock and reports the result through a
// callback. The paper notes this runs once after each platform reset.
type Calibrator struct {
	sched *sim.Scheduler
	fast  *clock.Oscillator
	slow  *clock.Oscillator

	busy   bool
	result *CalibrationResult
}

// NewCalibrator builds an idle calibrator.
func NewCalibrator(sched *sim.Scheduler, fast, slow *clock.Oscillator) *Calibrator {
	return &Calibrator{sched: sched, fast: fast, slow: slow}
}

// Busy reports whether a calibration is in flight.
func (c *Calibrator) Busy() bool { return c.busy }

// Result returns the last completed calibration, or nil.
func (c *Calibrator) Result() *CalibrationResult { return c.result }

// Start begins a calibration; done is invoked at window end with the
// result. Returns an error if already busy or oscillators are unstable.
func (c *Calibrator) Start(done func(CalibrationResult)) error {
	if c.busy {
		return fmt.Errorf("timer: calibration already in flight")
	}
	if !c.fast.Stable() || !c.slow.Stable() {
		return fmt.Errorf("timer: calibration requires both oscillators stable")
	}
	_, f, nSlow := PlanCalibration(c.fast.NominalHz(), c.slow.NominalHz())
	k0, t0, ok := c.slow.NextEdge(c.sched.Now())
	if !ok {
		return fmt.Errorf("timer: slow oscillator produced no edge")
	}
	tEnd := c.slow.EdgeTime(k0 + nSlow)
	c.busy = true
	c.sched.At(tEnd, "timer.calibration.done", func() {
		nFast := c.fast.EdgesBetween(t0, tEnd)
		m := fixedpoint.IntBitsNeeded(c.fast.NominalHz(), c.slow.NominalHz())
		res := CalibrationResult{
			Step:     fixedpoint.New(nFast, f),
			NFast:    nFast,
			NSlow:    nSlow,
			Window:   tEnd.Sub(t0),
			IntBits:  m,
			FracBits: f,
		}
		c.busy = false
		c.result = &res
		done(res)
	})
	return nil
}
