package timer_test

import (
	"fmt"
	"log"

	"odrips/internal/clock"
	"odrips/internal/sim"
	"odrips/internal/timer"
)

// Example reproduces the paper's §4.1.3 arithmetic: plan the fixed-point
// geometry for the Skylake clock pair, calibrate, and inspect the Step.
func Example() {
	s := sim.NewScheduler()
	fast := clock.NewOscillator(s, "xtal24", 24_000_000, 0, 0)
	slow := clock.NewOscillator(s, "xtal32", 32_768, 0, 0)
	fast.PowerOn()
	slow.PowerOn()

	m, f, nSlow := timer.PlanCalibration(fast.NominalHz(), slow.NominalHz())
	fmt.Printf("Step geometry: Q%d.%d, window 2^%d = %d slow cycles\n", m, f, f, nSlow)

	res, err := timer.CalibrateNow(s, fast, slow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step = %.6f (true ratio 732.421875)\n", res.Step.Float())
	fmt.Printf("drift bound: %.2f ppb\n", res.DriftPPB())
	// Output:
	// Step geometry: Q10.21, window 2^21 = 2097152 slow cycles
	// Step = 732.421875 (true ratio 732.421875)
	// drift bound: 0.65 ppb
}

// ExampleUnit walks the Fig. 3(b) hand-over: counting moves to the slow
// timer at a 32.768 kHz edge, the fast crystal turns off, and on exit the
// fast timer resumes within one slow period of the true value.
func ExampleUnit() {
	s := sim.NewScheduler()
	fast := clock.NewOscillator(s, "xtal24", 24_000_000, 0, 0)
	slow := clock.NewOscillator(s, "xtal32", 32_768, 0, 0)
	fast.PowerOn()
	slow.PowerOn()
	dom := clock.NewDomain("chipset.clk24", fast)
	res, err := timer.CalibrateNow(s, fast, slow)
	if err != nil {
		log.Fatal(err)
	}
	u := timer.NewUnit(s, dom, slow, res.Step)

	if err := u.EnterSlow(1_000_000, func(at sim.Time) {
		dom.Gate()
		fast.PowerOff()
		fmt.Println("slow timer hosting; 24 MHz crystal off")
	}); err != nil {
		log.Fatal(err)
	}
	s.RunFor(sim.Second)

	fast.PowerOn()
	dom.Ungate()
	if err := u.ExitFast(func(v uint64, at sim.Time) {
		fmt.Printf("fast timer reloaded near 25e6: %v\n", v > 24_900_000 && v < 25_100_000)
	}); err != nil {
		log.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	// Output:
	// slow timer hosting; 24 MHz crystal off
	// fast timer reloaded near 25e6: true
}
