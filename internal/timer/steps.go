package timer

import (
	"fmt"
	"math/bits"

	"odrips/internal/fixedpoint"
)

// stepsToReach returns the smallest n >= 1 such that after n additions of
// step, the accumulator's integer part reaches target. The accumulator is
// not modified. Requires target > acc.Floor().
//
// Derivation: the integer part after n steps is
// Int + floor((frac + n*stepRaw) / 2^f), so we need
// frac + n*stepRaw >= (target-Int) * 2^f, i.e.
// n = ceil(((target-Int)*2^f - frac) / stepRaw), computed in 128 bits.
func stepsToReach(acc *fixedpoint.Acc, step fixedpoint.Q, target uint64) (uint64, error) {
	if step.Raw == 0 {
		return 0, fmt.Errorf("timer: zero step never reaches target")
	}
	delta := target - acc.Floor() // caller guarantees target > floor
	f := step.FracBits
	hi, lo := bits.Mul64(delta, 1<<f)
	// Subtract the current fraction.
	var borrow uint64
	lo, borrow = bits.Sub64(lo, acc.Frac(), 0)
	hi, _ = bits.Sub64(hi, 0, borrow)
	if hi >= step.Raw {
		// Quotient would overflow 64 bits; only possible when the step is
		// below 1.0 (slow clock faster than fast clock) with a huge delta.
		return 0, fmt.Errorf("timer: target %d unreachable in 2^64 steps", target)
	}
	q, r := bits.Div64(hi, lo, step.Raw)
	if r != 0 {
		q++
	}
	if q == 0 {
		q = 1
	}
	return q, nil
}
