// Package report renders experiment results as plain-text tables and
// series, the way the benchmark harness prints each reproduced table and
// figure of the paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded, long rows panic (caller bug).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("report: row with %d cells in a %d-column table", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "| " + strings.Join(parts, " | ") + " |"
	}
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	fmt.Fprintln(w, line(t.Columns))
	fmt.Fprintln(w, line(rule))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Point is one sample of a series.
type Point struct {
	X     float64
	Y     float64
	Label string
}

// Series is a titled sequence of points (one figure curve).
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64, label string) {
	s.Points = append(s.Points, Point{X: x, Y: y, Label: label})
}

// Render writes the series as a table plus a unicode bar chart scaled to
// the maximum Y.
func (s *Series) Render(w io.Writer) {
	if s.Title != "" {
		fmt.Fprintf(w, "%s\n", s.Title)
	}
	var maxY float64
	for _, p := range s.Points {
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	const width = 40
	for _, p := range s.Points {
		bar := 0
		if maxY > 0 {
			bar = int(p.Y / maxY * width)
		}
		label := p.Label
		if label == "" {
			label = fmt.Sprintf("%g", p.X)
		}
		fmt.Fprintf(w, "  %-22s %10.3f %s %s\n", label, p.Y, s.YLabel, strings.Repeat("#", bar))
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (s *Series) String() string {
	var b strings.Builder
	s.Render(&b)
	return b.String()
}
