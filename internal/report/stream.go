package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// This file is the streaming/aggregation half of the report package: the
// deterministic percentile and histogram encoders the fleet aggregates
// are built from, and the NDJSON chunk writer the server's result
// streams use. Everything here is order-deterministic: percentiles are
// nearest-rank over a sorted copy, histogram bins are fixed edges, and
// NDJSON frames are single-line encoding/json objects (stable field
// order), so two runs that compute the same values emit the same bytes.

// Percentiles returns the nearest-rank percentile for each q (in
// percent, e.g. 50 for the median) over values. The input is not
// modified. An empty input yields zeros.
func Percentiles(values []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(values) == 0 {
		return out
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	for i, q := range qs {
		k := int(math.Ceil(q/100*float64(len(s)))) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(s) {
			k = len(s) - 1
		}
		out[i] = s[k]
	}
	return out
}

// HistBucket is one histogram bin: observations in [Lo, Hi).
type HistBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int     `json:"count"`
}

// Hist is a fixed-edge histogram. Edges must be strictly increasing;
// observations outside [edges[0], edges[last]) are counted in Under/Over
// so no sample is silently dropped.
type Hist struct {
	edges  []float64
	counts []int
	under  int
	over   int
}

// NewHist builds a histogram over the given bin edges (at least two,
// strictly increasing; panics otherwise — edges are compile-time tables,
// not data).
func NewHist(edges ...float64) *Hist {
	if len(edges) < 2 {
		panic("report: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("report: histogram edges not increasing at %d", i))
		}
	}
	return &Hist{edges: edges, counts: make([]int, len(edges)-1)}
}

// Observe adds one sample.
func (h *Hist) Observe(v float64) {
	if v < h.edges[0] {
		h.under++
		return
	}
	// Linear scan: edge tables here are a handful of bins, and the scan
	// is branch-predictable; not worth a binary search.
	for i := 1; i < len(h.edges); i++ {
		if v < h.edges[i] {
			h.counts[i-1]++
			return
		}
	}
	h.over++
}

// Buckets returns the bins in edge order.
func (h *Hist) Buckets() []HistBucket {
	out := make([]HistBucket, len(h.counts))
	for i := range h.counts {
		out[i] = HistBucket{Lo: h.edges[i], Hi: h.edges[i+1], Count: h.counts[i]}
	}
	return out
}

// Outside reports the samples below the first and at-or-above the last
// edge.
func (h *Hist) Outside() (under, over int) { return h.under, h.over }

// flusher is the subset of bufio.Writer-style flushing NDJSON drives
// after every frame, so a streaming consumer sees each line as soon as
// it is complete.
type flusher interface{ Flush() error }

// httpFlusher matches http.ResponseWriter's Flush (no error).
type httpFlusher interface{ Flush() }

// NDJSON writes newline-delimited JSON frames: one encoding/json object
// per line, flushed per frame when the underlying writer supports it.
// It is the framing used by the fleet server's result streams; field
// order within a frame is encoding/json's declaration order, so a frame
// built from the same value is byte-identical run to run.
type NDJSON struct {
	w io.Writer
}

// NewNDJSON wraps w.
func NewNDJSON(w io.Writer) *NDJSON { return &NDJSON{w: w} }

// Write marshals v, appends a newline, writes, and flushes.
func (e *NDJSON) Write(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("report: ndjson: %w", err)
	}
	b = append(b, '\n')
	if _, err := e.w.Write(b); err != nil {
		return err
	}
	switch f := e.w.(type) {
	case flusher:
		return f.Flush()
	case httpFlusher:
		f.Flush()
	}
	return nil
}
