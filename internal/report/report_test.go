package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "A", "Long column B")
	tb.AddRow("1", "2")
	tb.AddRow("longer-cell")
	tb.AddNote("note %d", 42)
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "Long column B") {
		t.Fatalf("render missing header:\n%s", out)
	}
	if !strings.Contains(out, "longer-cell") || !strings.Contains(out, "note 42") {
		t.Fatalf("render missing body:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + rule + 2 rows + note = 6 lines.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All grid lines equal width.
	w := len(lines[1])
	for _, l := range lines[1:5] {
		if len(l) != w {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableOverfullRowPanics(t *testing.T) {
	tb := NewTable("x", "only")
	defer func() {
		if recover() == nil {
			t.Fatal("overfull row did not panic")
		}
	}()
	tb.AddRow("a", "b")
}

func TestSeriesRender(t *testing.T) {
	s := &Series{Title: "bars", YLabel: "mW"}
	s.Add(0, 10, "ten")
	s.Add(1, 20, "twenty")
	s.Add(2, 0, "zero")
	out := s.String()
	if !strings.Contains(out, "ten") || !strings.Contains(out, "twenty") {
		t.Fatalf("series missing labels:\n%s", out)
	}
	// The 20-value bar must be about twice the 10-value bar.
	var bar10, bar20 int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "#")
		if strings.Contains(line, "ten ") || strings.HasSuffix(line, "# ") {
		}
		if strings.Contains(line, "ten") && !strings.Contains(line, "twenty") {
			bar10 = n
		}
		if strings.Contains(line, "twenty") {
			bar20 = n
		}
	}
	if bar20 != 2*bar10 || bar10 == 0 {
		t.Fatalf("bar scaling wrong (%d vs %d):\n%s", bar10, bar20, out)
	}
}

func TestSeriesEmptyLabelUsesX(t *testing.T) {
	s := &Series{Title: "t"}
	s.Add(3.5, 1, "")
	if !strings.Contains(s.String(), "3.5") {
		t.Fatal("unlabeled point did not fall back to X")
	}
}
