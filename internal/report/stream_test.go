package report

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPercentiles(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3} // unsorted on purpose
	got := Percentiles(vals, 0, 20, 50, 99, 100)
	want := []float64{1, 1, 3, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("q=%d: got %v want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if vals[0] != 5 {
		t.Error("Percentiles mutated its input")
	}
	if got := Percentiles(nil, 50); got[0] != 0 {
		t.Errorf("empty input: %v", got)
	}
}

func TestHist(t *testing.T) {
	h := NewHist(0, 1, 10, 100)
	for _, v := range []float64{-1, 0, 0.5, 1, 9.99, 10, 50, 100, 1e9} {
		h.Observe(v)
	}
	b := h.Buckets()
	wantCounts := []int{2, 2, 2} // [0,1): 0,0.5; [1,10): 1,9.99; [10,100): 10,50
	for i, w := range wantCounts {
		if b[i].Count != w {
			t.Errorf("bucket %d [%g,%g): %d want %d", i, b[i].Lo, b[i].Hi, b[i].Count, w)
		}
	}
	if under, over := h.Outside(); under != 1 || over != 2 {
		t.Errorf("outside: under=%d over=%d; want 1, 2", under, over)
	}
}

func TestHistBadEdges(t *testing.T) {
	for _, edges := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edges %v: no panic", edges)
				}
			}()
			NewHist(edges...)
		}()
	}
}

func TestNDJSONFraming(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf) // exercises the flusher path
	enc := NewNDJSON(bw)
	type frame struct {
		Type string `json:"type"`
		N    int    `json:"n"`
	}
	for i := 0; i < 3; i++ {
		if err := enc.Write(frame{Type: "progress", N: i}); err != nil {
			t.Fatal(err)
		}
		// Flushed per frame: the buffered writer must be empty.
		if bw.Buffered() != 0 {
			t.Fatalf("frame %d not flushed", i)
		}
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines: %q", len(lines), buf.String())
	}
	for i, ln := range lines {
		var f frame
		if err := json.Unmarshal([]byte(ln), &f); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if f.N != i || f.Type != "progress" {
			t.Errorf("line %d decoded %+v", i, f)
		}
		if strings.Contains(ln, "\n") {
			t.Errorf("line %d contains embedded newline", i)
		}
	}
}
