package sim

import "fmt"

// Event is a handle to a scheduled callback. Events are one-shot: once
// fired or cancelled the handle goes stale and every method degrades to an
// inert answer (Pending reports false, Cancel is a no-op). The zero value
// is a valid stale handle. Obtain live handles from Scheduler.At or
// Scheduler.After.
//
// Internally the scheduler recycles event storage through a free list; a
// generation counter in the handle detects reuse, so holding a handle past
// its firing is always safe and never observes the recycled slot.
type Event struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Valid reports whether the handle was ever issued by a scheduler (the
// zero value is not). A valid handle may still be stale; see Pending.
func (e Event) Valid() bool { return e.s != nil }

// live returns the backing slot while the event is still queued.
func (e Event) live() (*eventSlot, bool) {
	if e.s == nil || int(e.slot) >= len(e.s.slots) {
		return nil, false
	}
	sl := &e.s.slots[e.slot]
	if sl.gen != e.gen {
		return nil, false
	}
	return sl, true
}

// Pending reports whether the event is still queued.
func (e Event) Pending() bool { _, ok := e.live(); return ok }

// When returns the instant the event is scheduled for, or zero once the
// event has fired or been cancelled.
func (e Event) When() Time {
	if sl, ok := e.live(); ok {
		return sl.when
	}
	return 0
}

// Name returns the debugging label given at scheduling time, or "" once
// the event has fired or been cancelled.
func (e Event) Name() string {
	if sl, ok := e.live(); ok {
		return sl.name
	}
	return ""
}

// eventSlot is the recycled backing store of one scheduled event. Slots
// live in a slab indexed by Event.slot; gen increments on every free so
// stale handles miscompare and read as inert.
type eventSlot struct {
	fn       func()
	name     string
	when     Time
	seq      uint64
	gen      uint32
	heapIdx  int32 // position in Scheduler.heap, -1 when not queued
	nextFree int32 // free-list link, meaningful only while free
}

// heapEntry is one element of the inlined 4-ary min-heap. The ordering key
// (when, seq) is duplicated here so sifting compares without touching the
// slot slab, and the entry carries its slot index for dispatch.
type heapEntry struct {
	when Time
	seq  uint64
	slot int32
}

func entryLess(a, b heapEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; the whole platform model is single-threaded by design so
// that every run is exactly reproducible. (Parallel experiments run one
// Scheduler per goroutine — see internal/experiments.RunPoints.)
type Scheduler struct {
	now      Time
	heap     []heapEntry
	slots    []eventSlot
	freeHead int32
	seq      uint64
	fired    uint64
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler { return &Scheduler{freeHead: -1} }

// Now returns the current simulated instant.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the total number of events dispatched so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) }

func (s *Scheduler) allocSlot() int32 {
	if s.freeHead >= 0 {
		i := s.freeHead
		s.freeHead = s.slots[i].nextFree
		return i
	}
	s.slots = append(s.slots, eventSlot{heapIdx: -1})
	return int32(len(s.slots) - 1)
}

func (s *Scheduler) freeSlot(i int32) {
	sl := &s.slots[i]
	sl.fn = nil
	sl.name = ""
	sl.gen++
	sl.heapIdx = -1
	sl.nextFree = s.freeHead
	s.freeHead = i
}

// At schedules fn to run at instant t. Scheduling in the past panics: the
// model has a bug if it ever asks for that. Events at the current instant
// are legal and run after the currently-executing event returns.
func (s *Scheduler) At(t Time, name string, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, t, s.now))
	}
	i := s.allocSlot()
	sl := &s.slots[i]
	sl.when = t
	sl.seq = s.seq
	sl.fn = fn
	sl.name = name
	s.seq++
	s.heapPush(heapEntry{when: t, seq: sl.seq, slot: i})
	return Event{s: s, slot: i, gen: sl.gen}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, name string, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling %q with negative delay %v", name, d))
	}
	return s.At(s.now.Add(d), name, fn)
}

// Cancel removes a pending event and recycles its slot immediately — there
// is no tombstone state, so the queue never holds cancelled entries and
// every drain path (Step, Run, RunUntil) dispatches from the same code.
// Cancelling a fired, already-cancelled, or zero-value event is a no-op,
// so callers can cancel unconditionally.
func (s *Scheduler) Cancel(e Event) {
	if e.s != s {
		return
	}
	sl, ok := e.live()
	if !ok {
		return
	}
	s.heapRemove(int(sl.heapIdx))
	s.freeSlot(e.slot)
}

// Clear cancels every pending event in one sweep, leaving the clock where
// it is, and returns how many events were dropped. Each slot is recycled
// exactly as an individual Cancel would, so any handle still held goes
// stale (its generation miscompares) rather than observing a reused slot.
// The platform drains the queue this way after a latched flow error: a
// failed run must stop dead instead of keeping half-torn-down hardware
// models dispatching into each other.
func (s *Scheduler) Clear() int {
	n := len(s.heap)
	for _, e := range s.heap {
		s.freeSlot(e.slot)
	}
	s.heap = s.heap[:0]
	return n
}

// dispatch pops the earliest entry, frees its slot, and runs the callback.
// The slot is recycled before fn runs; the generation bump keeps any handle
// the callback still holds safely stale.
func (s *Scheduler) dispatch() {
	ent := s.heapRemove(0)
	fn := s.slots[ent.slot].fn
	s.now = ent.when
	s.freeSlot(ent.slot)
	s.fired++
	fn()
}

// Step dispatches the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	s.dispatch()
	return true
}

// Run dispatches events until the queue drains.
func (s *Scheduler) Run() {
	for len(s.heap) > 0 {
		s.dispatch()
	}
}

// RunUntil dispatches events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.heap) > 0 && s.heap[0].when <= deadline {
		s.dispatch()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// AdvanceTo moves the clock to t without dispatching anything. It is the
// bulk time advance used by the platform's steady-state fast-forward,
// which is only sound when no event would have fired in the skipped
// window — so an event queued at or before t panics (the model has a bug
// if a replayed window still has work in it), as does moving backwards.
func (s *Scheduler) AdvanceTo(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v, before now %v", t, s.now))
	}
	if len(s.heap) > 0 && s.heap[0].when <= t {
		panic(fmt.Sprintf("sim: AdvanceTo %v over pending event %q at %v",
			t, s.slots[s.heap[0].slot].name, s.heap[0].when))
	}
	s.now = t
}

// setEntry stores e at heap position i and keeps the slot back-reference
// coherent for O(log n) Cancel.
func (s *Scheduler) setEntry(i int, e heapEntry) {
	s.heap[i] = e
	s.slots[e.slot].heapIdx = int32(i)
}

func (s *Scheduler) heapPush(e heapEntry) {
	s.heap = append(s.heap, e)
	s.siftUp(len(s.heap)-1, e)
}

func (s *Scheduler) siftUp(i int, e heapEntry) {
	for i > 0 {
		p := (i - 1) / 4
		pe := s.heap[p]
		if !entryLess(e, pe) {
			break
		}
		s.setEntry(i, pe)
		i = p
	}
	s.setEntry(i, e)
}

func (s *Scheduler) siftDown(i int, e heapEntry) {
	n := len(s.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m, me := first, s.heap[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryLess(s.heap[c], me) {
				m, me = c, s.heap[c]
			}
		}
		if !entryLess(me, e) {
			break
		}
		s.setEntry(i, me)
		i = m
	}
	s.setEntry(i, e)
}

// heapRemove deletes and returns the entry at position i.
func (s *Scheduler) heapRemove(i int) heapEntry {
	removed := s.heap[i]
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap[n] = heapEntry{}
	s.heap = s.heap[:n]
	if i < n {
		if i > 0 && entryLess(last, s.heap[(i-1)/4]) {
			s.siftUp(i, last)
		} else {
			s.siftDown(i, last)
		}
	}
	return removed
}

// Every schedules fn at t0, t0+period, t0+2*period, ... until the returned
// Ticker is stopped. fn receives the tick instant.
func (s *Scheduler) Every(t0 Time, period Duration, name string, fn func(Time)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q with non-positive period %v", name, period))
	}
	tk := &Ticker{sched: s, period: period, name: name, fn: fn}
	tk.arm(t0)
	return tk
}

// Ticker is a repeating event created by Scheduler.Every.
type Ticker struct {
	sched   *Scheduler
	period  Duration
	name    string
	fn      func(Time)
	ev      Event
	stopped bool
}

func (tk *Ticker) arm(t Time) {
	tk.ev = tk.sched.At(t, tk.name, func() {
		if tk.stopped {
			return
		}
		at := tk.sched.Now()
		tk.arm(at.Add(tk.period))
		tk.fn(at)
	})
}

// Stop cancels future ticks. Stop is idempotent.
func (tk *Ticker) Stop() {
	if tk.stopped {
		return
	}
	tk.stopped = true
	tk.sched.Cancel(tk.ev)
}
