package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are one-shot: once fired or
// cancelled they are inert. The zero value is not usable; obtain events from
// Scheduler.At or Scheduler.After.
type Event struct {
	when   Time
	seq    uint64 // tie-break: FIFO among equal timestamps
	index  int    // heap index, -1 when not queued
	fn     func()
	name   string
	fired  bool
	cancel bool
}

// When returns the instant the event is (or was) scheduled for.
func (e *Event) When() Time { return e.when }

// Name returns the debugging label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 && !e.cancel }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; the whole platform model is single-threaded by design so
// that every run is exactly reproducible.
type Scheduler struct {
	now     Time
	queue   eventQueue
	seq     uint64
	fired   uint64
	running bool
}

// NewScheduler returns a scheduler positioned at the epoch.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated instant.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the total number of events dispatched so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at instant t. Scheduling in the past panics: the
// model has a bug if it ever asks for that. Events at the current instant
// are legal and run after the currently-executing event returns.
func (s *Scheduler) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", name, t, s.now))
	}
	e := &Event{when: t, seq: s.seq, fn: fn, name: name, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling %q with negative delay %v", name, d))
	}
	return s.At(s.now.Add(d), name, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op, so callers can cancel unconditionally.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Step dispatches the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.when
		e.fired = true
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil dispatches events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.cancel {
			heap.Pop(&s.queue)
			continue
		}
		if e.when > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Every schedules fn at t0, t0+period, t0+2*period, ... until the returned
// Ticker is stopped. fn receives the tick instant.
func (s *Scheduler) Every(t0 Time, period Duration, name string, fn func(Time)) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q with non-positive period %v", name, period))
	}
	tk := &Ticker{sched: s, period: period, name: name, fn: fn}
	tk.arm(t0)
	return tk
}

// Ticker is a repeating event created by Scheduler.Every.
type Ticker struct {
	sched   *Scheduler
	period  Duration
	name    string
	fn      func(Time)
	ev      *Event
	stopped bool
}

func (tk *Ticker) arm(t Time) {
	tk.ev = tk.sched.At(t, tk.name, func() {
		if tk.stopped {
			return
		}
		at := tk.sched.Now()
		tk.arm(at.Add(tk.period))
		tk.fn(at)
	})
}

// Stop cancels future ticks. Stop is idempotent.
func (tk *Ticker) Stop() {
	if tk.stopped {
		return
	}
	tk.stopped = true
	tk.sched.Cancel(tk.ev)
}
