// Package sim provides the discrete-event simulation kernel used by every
// other subsystem: a picosecond-resolution simulated clock, a deterministic
// event scheduler, and helpers for periodic processes.
//
// All timing in the ODRIPS model is expressed as sim.Time (picoseconds since
// simulation start). Picosecond resolution is fine enough to represent exact
// periods of both the 24 MHz fast crystal (41666.6... ps, represented via
// rational edge arithmetic in package clock) and the 32.768 kHz slow crystal
// (30517578.125 ps), while an int64 still spans ~106 days of simulated time,
// far beyond any connected-standby experiment in the paper.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant in simulated time, in picoseconds since simulation
// start. The zero value is the simulation epoch.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// MaxTime is the largest representable instant. It is used as an "infinitely
// far away" deadline for disabled timers.
const MaxTime Time = 1<<63 - 1

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the instant as seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts the instant to a time.Duration offset from the epoch.
// It saturates if the value does not fit (it always fits: both are int64
// and sim picoseconds are finer than std nanoseconds).
func (t Time) Std() time.Duration { return time.Duration(t / Time(Nanosecond)) }

// String renders the instant with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration in microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// FromSeconds converts seconds to a Duration, rounding to the nearest
// picosecond.
func FromSeconds(s float64) Duration {
	if s < 0 {
		return Duration(s*float64(Second) - 0.5)
	}
	return Duration(s*float64(Second) + 0.5)
}

// String renders the duration with an adaptive unit (ps, ns, us, ms, s).
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	switch {
	case d < Nanosecond:
		return fmt.Sprintf("%s%dps", neg, int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%s%.3gns", neg, float64(d)/float64(Nanosecond))
	case d < Millisecond:
		return fmt.Sprintf("%s%.4gus", neg, float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%s%.4gms", neg, float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%.6gs", neg, float64(d)/float64(Second))
	}
}
