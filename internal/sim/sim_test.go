package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Millisecond)
	if got := t1.Sub(t0); got != 5*Millisecond {
		t.Fatalf("Sub = %v, want 5ms", got)
	}
	if !t0.Before(t1) || !t1.After(t0) {
		t.Fatalf("ordering broken: t0=%v t1=%v", t0, t1)
	}
	if s := t1.Seconds(); s != 0.005 {
		t.Fatalf("Seconds = %v, want 0.005", s)
	}
}

func TestFromSeconds(t *testing.T) {
	cases := []struct {
		s    float64
		want Duration
	}{
		{0, 0},
		{1, Second},
		{0.001, Millisecond},
		{30e-6, 30 * Microsecond},
		{-0.5, -500 * Millisecond},
	}
	for _, c := range cases {
		if got := FromSeconds(c.s); got != c.want {
			t.Errorf("FromSeconds(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{30 * Microsecond, "30us"},
		{5 * Millisecond, "5ms"},
		{2 * Second, "2s"},
		{-3 * Millisecond, "-3ms"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(30*Nanosecond, "c", func() { order = append(order, 3) })
	s.After(10*Nanosecond, "a", func() { order = append(order, 1) })
	s.After(20*Nanosecond, "b", func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != Time(30*Nanosecond) {
		t.Fatalf("Now = %v, want 30ns", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(5*Microsecond), "tie", func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	e := s.After(Microsecond, "x", func() { ran = true })
	if !e.Pending() {
		t.Fatal("event should be pending before cancel")
	}
	s.Cancel(e)
	s.Cancel(e) // idempotent
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

func TestSchedulerCancelFromCallback(t *testing.T) {
	s := NewScheduler()
	ran := false
	var e2 Event
	s.After(Nanosecond, "first", func() { s.Cancel(e2) })
	e2 = s.After(2*Nanosecond, "second", func() { ran = true })
	s.Run()
	if ran {
		t.Fatal("event cancelled from an earlier callback still ran")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.After(Millisecond, "advance", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(Time(Microsecond), "past", func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-Nanosecond, "neg", func() {})
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := NewScheduler()
	var fired []string
	s.After(Millisecond, "early", func() { fired = append(fired, "early") })
	s.After(Second, "late", func() { fired = append(fired, "late") })
	s.RunUntil(Time(10 * Millisecond))
	if len(fired) != 1 || fired[0] != "early" {
		t.Fatalf("fired = %v, want [early]", fired)
	}
	if s.Now() != Time(10*Millisecond) {
		t.Fatalf("Now = %v, want 10ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("late event lost: %v", fired)
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(Time(Millisecond), "boundary", func() { ran = true })
	s.RunUntil(Time(Millisecond))
	if !ran {
		t.Fatal("event at exactly the deadline did not fire")
	}
}

func TestEventScheduledDuringRunUntil(t *testing.T) {
	s := NewScheduler()
	var hits []Time
	s.After(Millisecond, "a", func() {
		hits = append(hits, s.Now())
		s.After(Millisecond, "b", func() { hits = append(hits, s.Now()) })
	})
	s.RunUntil(Time(5 * Millisecond))
	if len(hits) != 2 || hits[1] != Time(2*Millisecond) {
		t.Fatalf("hits = %v, want firings at 1ms and 2ms", hits)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := s.Every(Time(Microsecond), Microsecond, "tick", func(at Time) {
		ticks = append(ticks, at)
		if len(ticks) == 5 {
			// Stopping from inside the callback must work.
		}
	})
	s.RunUntil(Time(5 * Microsecond))
	tk.Stop()
	tk.Stop() // idempotent
	s.RunUntil(Time(20 * Microsecond))
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(ticks), ticks)
	}
	for i, at := range ticks {
		want := Time((i + 1)) * Time(Microsecond)
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = s.Every(0, Microsecond, "tick", func(Time) {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(Time(Millisecond))
	if n != 3 {
		t.Fatalf("ticker fired %d times after in-callback Stop, want 3", n)
	}
}

func TestZeroPeriodTickerPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	s.Every(0, 0, "bad", func(Time) {})
}

// Property: for any random batch of event timestamps, the scheduler fires
// them in non-decreasing time order and ends at the max timestamp.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(offsets []uint32) bool {
		if len(offsets) == 0 {
			return true
		}
		s := NewScheduler()
		var fired []Time
		var maxT Time
		for _, off := range offsets {
			at := Time(off) * Time(Nanosecond)
			if at > maxT {
				maxT = at
			}
			s.At(at, "p", func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return s.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of events fires exactly the others.
func TestSchedulerCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := NewScheduler()
		const n = 100
		//odrips:allow handle property test holds handles only while all stay live, precisely to exercise Cancel
		events := make([]Event, n)
		firedCount := 0
		for i := range events {
			events[i] = s.At(Time(rng.Intn(1000))*Time(Nanosecond), "p", func() { firedCount++ })
		}
		cancelled := 0
		for _, e := range events {
			if rng.Intn(2) == 0 {
				s.Cancel(e)
				cancelled++
			}
		}
		s.Run()
		if firedCount != n-cancelled {
			t.Fatalf("trial %d: fired %d, want %d", trial, firedCount, n-cancelled)
		}
	}
}

// Regression: a cancelled event sitting at the head of the queue with a
// timestamp exactly at the RunUntil deadline must not fire, must not stall
// the drain, and must still advance the clock to the deadline. (The old
// implementation kept cancelled tombstones in the queue and had two
// different skip loops — Step's and RunUntil's — to drain them; Cancel now
// removes the entry eagerly so every drain path is the same code.)
func TestRunUntilCancelledHeadAtDeadline(t *testing.T) {
	s := NewScheduler()
	ran := false
	later := false
	head := s.At(Time(Millisecond), "head", func() { ran = true })
	s.At(Time(2*Millisecond), "later", func() { later = true })
	s.Cancel(head)
	s.RunUntil(Time(Millisecond))
	if ran {
		t.Fatal("cancelled head event fired")
	}
	if later {
		t.Fatal("event beyond the deadline fired")
	}
	if s.Now() != Time(Millisecond) {
		t.Fatalf("Now = %v, want the 1ms deadline", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (cancelled entries must leave the queue)", s.Pending())
	}
	s.Run()
	if !later {
		t.Fatal("surviving event lost")
	}
}

// Stale handles must stay inert after their slot is recycled: cancelling a
// fired event whose slot now hosts a different live event must not disturb
// the new occupant.
func TestStaleHandleAfterRecycle(t *testing.T) {
	s := NewScheduler()
	old := s.After(Nanosecond, "old", func() {})
	s.Step() // fires and recycles old's slot
	if old.Pending() {
		t.Fatal("fired event still pending")
	}
	ran := false
	fresh := s.After(Nanosecond, "fresh", func() { ran = true })
	s.Cancel(old) // stale: must not cancel the recycled slot's new event
	if !fresh.Pending() {
		t.Fatal("stale Cancel removed the slot's new occupant")
	}
	s.Run()
	if !ran {
		t.Fatal("recycled event did not fire")
	}
	if old.When() != 0 || old.Name() != "" {
		t.Fatalf("stale handle leaks recycled state: when=%v name=%q", old.When(), old.Name())
	}
}

// The zero-value Event is a valid stale handle everywhere.
func TestZeroEventInert(t *testing.T) {
	s := NewScheduler()
	var e Event
	if e.Valid() || e.Pending() {
		t.Fatal("zero event claims validity")
	}
	s.Cancel(e) // must not panic
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		victim := s.After(2*Nanosecond, "bench-cancel", func() {})
		s.After(Nanosecond, "bench", func() {})
		s.Cancel(victim)
		s.Step()
	}
}

func TestClearDropsAllPendingEvents(t *testing.T) {
	s := NewScheduler()
	ran := 0
	//odrips:allow handle the test holds handles across Clear precisely to assert they go stale
	var held []Event
	for i := 1; i <= 5; i++ {
		held = append(held, s.After(Duration(i)*Microsecond, "x", func() { ran++ }))
	}
	tk := s.Every(s.Now().Add(Microsecond), Microsecond, "tick", func(Time) { ran++ })
	if n := s.Pending(); n != 6 {
		t.Fatalf("pending = %d, want 6", n)
	}
	if n := s.Clear(); n != 6 {
		t.Fatalf("Clear dropped %d events, want 6", n)
	}
	if n := s.Pending(); n != 0 {
		t.Fatalf("pending after Clear = %d, want 0", n)
	}
	for i, e := range held {
		if e.Pending() {
			t.Fatalf("handle %d still pending after Clear", i)
		}
		if e.When() != 0 || e.Name() != "" {
			t.Fatalf("handle %d not stale after Clear", i)
		}
	}
	s.Run()
	if ran != 0 {
		t.Fatalf("%d cleared events ran", ran)
	}
	tk.Stop() // stale handle inside; must be a no-op

	// The scheduler stays fully usable: slots recycle through the free list.
	fired := false
	s.After(Microsecond, "after-clear", func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event scheduled after Clear did not run")
	}
}

func TestClearFromCallback(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.After(Microsecond, "clearer", func() { s.Clear() })
	s.After(2*Microsecond, "victim", func() { ran++ })
	s.After(3*Microsecond, "victim", func() { ran++ })
	s.Run()
	if ran != 0 {
		t.Fatalf("%d events ran after an in-callback Clear", ran)
	}
	if s.Pending() != 0 {
		t.Fatal("queue not empty after in-callback Clear")
	}
}
