//go:build !race

// Alloc-regression guard for the scheduler hot path (excluded under the
// race detector, whose instrumentation allocates). Locks in the PR 1
// allocation-free schedule/cancel/step churn.

package sim

import "testing"

func TestSchedulerChurnAllocFree(t *testing.T) {
	s := NewScheduler()
	nop := func() {}
	// Warm the event freelist past the churn working set.
	for i := 0; i < 256; i++ {
		victim := s.After(2*Nanosecond, "warm-cancel", nop)
		s.After(Nanosecond, "warm", nop)
		s.Cancel(victim)
		s.Step()
	}
	if n := testing.AllocsPerRun(500, func() {
		victim := s.After(2*Nanosecond, "churn-cancel", nop)
		s.After(Nanosecond, "churn", nop)
		s.Cancel(victim)
		s.Step()
	}); n != 0 {
		t.Fatalf("scheduler churn allocates %.1f/op, want 0", n)
	}
}
