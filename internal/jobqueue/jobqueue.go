// Package jobqueue is the serving core of the fleet engine: a bounded
// FIFO of fleet jobs executed by a fixed worker pool against one shared
// memo plane, with per-job cancellation, live progress, and a graceful
// drain for process shutdown.
//
// Design constraints, in the order they shaped the package:
//
//   - Deterministic identities. A job's ID is a pure function of
//     (queue seed, acceptance sequence number, canonical spec JSON) —
//     no walltime, no process randomness — so a replayed submission
//     script produces the same IDs against a fresh queue, and the load
//     harness can diff two runs by ID. The sequence number advances
//     only on ACCEPTED submissions: a rejected burst (queue full, spec
//     too large) does not perturb the IDs of what follows.
//
//   - Backpressure over buffering. Capacity bounds the pending FIFO;
//     when it is full Submit fails fast with ErrQueueFull rather than
//     blocking the HTTP handler or growing without bound. Callers
//     (odrips-loadgen) retry; the queue never sheds an accepted job.
//
//   - Determinism of results. Workers only move jobs between states
//     and call fleet.RunWithProgress; the fleet engine's two-phase
//     discipline makes each job's Aggregates a pure function of its
//     spec, so the worker count here changes throughput only. The
//     shared plane can change memo STATISTICS across interleavings —
//     never results (see fleet.Run's contract).
//
//   - No package state. Everything hangs off a Queue value; the
//     package passes the globalstate vet rule with zero allows.
package jobqueue

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"odrips/internal/fleet"
	"odrips/internal/platform"
)

// Submission and lookup failures, in the shapes the HTTP layer maps to
// status codes. Spec decode/validation failures surface as
// *fleet.SpecError instead.
var (
	// ErrQueueFull: the pending FIFO is at capacity. Retryable.
	ErrQueueFull = errors.New("jobqueue: queue full")
	// ErrDraining: the queue is shutting down and accepts no new work.
	ErrDraining = errors.New("jobqueue: draining")
	// ErrTooLarge: the spec's fleet exceeds Options.MaxDevices.
	ErrTooLarge = errors.New("jobqueue: fleet too large")
	// ErrNotFound: no such job (never accepted, or evicted by retention).
	ErrNotFound = errors.New("jobqueue: no such job")
	// ErrNotFinished: results requested before the job finished.
	ErrNotFinished = errors.New("jobqueue: job not finished")
)

// State is a job's lifecycle position. Transitions are monotone:
// pending → running → {done, failed, canceled}, or pending → canceled.
type State string

const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Finished reports whether s is terminal.
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Options configures a Queue. The zero value is usable; zero fields
// take the defaults noted on each.
type Options struct {
	// Capacity bounds the pending FIFO (default 256).
	Capacity int
	// Workers sizes the execution pool (default 4).
	Workers int
	// Seed is folded into every job ID; two queues with the same seed
	// fed the same accepted submissions mint the same IDs (default 1).
	Seed int64
	// MaxDevices rejects specs whose fleet exceeds it (default 1e6).
	MaxDevices int
	// Retain bounds how many FINISHED jobs stay queryable; the oldest
	// finished jobs are evicted first (default 4096). Pending and
	// running jobs are never evicted.
	Retain int
	// Plane is the shared memo plane jobs warm and draw from; nil lets
	// each job build its own (correct, but forfeits cross-job reuse).
	Plane *platform.MemoPlane
	// Hold parks the worker pool until Release is called. Tests use it
	// to build deterministic queue-full and cancel-while-pending
	// scenarios; servers leave it false.
	Hold bool
}

func (o Options) withDefaults() Options {
	if o.Capacity == 0 {
		o.Capacity = 256
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxDevices == 0 {
		o.MaxDevices = 1_000_000
	}
	if o.Retain == 0 {
		o.Retain = 4096
	}
	return o
}

// Job is one accepted submission. All accessors are safe for
// concurrent use with the executing worker.
type Job struct {
	id       string
	seq      uint64
	spec     fleet.Spec // normalized
	specJSON []byte     // canonical encoding of spec
	prog     *fleet.Progress

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	state  State
	report *fleet.Report
	err    error
	done   chan struct{} // closed on reaching a terminal state
}

// ID is the deterministic job identity.
func (j *Job) ID() string { return j.id }

// Seq is the acceptance sequence number (1-based).
func (j *Job) Seq() uint64 { return j.seq }

// Spec is the normalized (defaulted, validated) spec the job runs.
func (j *Job) Spec() fleet.Spec { return j.spec }

// SpecJSON is the canonical encoding the job's ID commits to.
func (j *Job) SpecJSON() []byte { return append([]byte(nil), j.specJSON...) }

// State is the job's current lifecycle position.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Progress snapshots the job's live fleet progress counters.
func (j *Job) Progress() fleet.ProgressStats { return j.prog.Stats() }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the finished job's report. ErrNotFinished before the
// terminal state; the run's error for failed/canceled jobs.
func (j *Job) Result() (*fleet.Report, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Finished() {
		return nil, ErrNotFinished
	}
	if j.err != nil {
		return nil, j.err
	}
	return j.report, nil
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, rep *fleet.Report, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Finished() {
		return false
	}
	j.state = state
	j.report = rep
	j.err = err
	j.cancel() // release the context's resources
	close(j.done)
	return true
}

// claim moves a dequeued job pending → running; false if the job was
// canceled while pending (the worker then skips it).
func (j *Job) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePending {
		return false
	}
	j.state = StateRunning
	return true
}

// cancelPending moves a pending job straight to canceled. It races the
// worker's claim under j.mu, so exactly one of them wins: if claim got
// there first the job is running and only its worker may finish it
// (the canceled context ends the run at the next device boundary).
func (j *Job) cancelPending(err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePending {
		return false
	}
	j.state = StateCanceled
	j.err = err
	j.cancel()
	close(j.done)
	return true
}

// Stats is the queue's counter snapshot (served by /v1/stats).
type Stats struct {
	Capacity int  `json:"capacity"`
	Workers  int  `json:"workers"`
	Draining bool `json:"draining"`

	Accepted     uint64 `json:"accepted"`      // submissions admitted (== max seq)
	RejectedFull uint64 `json:"rejected_full"` // ErrQueueFull rejections
	Pending      int    `json:"pending"`
	Running      int    `json:"running"`
	Done         uint64 `json:"done"`
	Failed       uint64 `json:"failed"`
	Canceled     uint64 `json:"canceled"`
	Retained     int    `json:"retained"` // jobs currently queryable
	Evicted      uint64 `json:"evicted"`  // finished jobs dropped by retention
}

// Queue is the bounded job queue plus its worker pool. Create with New;
// the zero value is not usable.
type Queue struct {
	opts Options

	mu       sync.Mutex
	seq      uint64
	jobs     map[string]*Job
	finished []string // IDs in finish order, for retention eviction
	draining bool
	counts   struct {
		rejectedFull, done, failed, canceled, evicted uint64
		running                                       int
	}

	fifo    chan *Job
	workers sync.WaitGroup
	release chan struct{}
	relOnce sync.Once
}

// New builds the queue and starts its worker pool.
func New(opts Options) *Queue {
	opts = opts.withDefaults()
	q := &Queue{
		opts: opts,
		jobs: make(map[string]*Job),
		fifo: make(chan *Job, opts.Capacity),
	}
	if opts.Hold {
		q.release = make(chan struct{})
	}
	for i := 0; i < opts.Workers; i++ {
		q.workers.Add(1)
		go func() {
			defer q.workers.Done()
			if q.release != nil {
				<-q.release
			}
			for j := range q.fifo {
				q.run(j)
			}
		}()
	}
	return q
}

// Release unparks a Hold-started worker pool. Idempotent; a no-op for
// queues built without Hold.
func (q *Queue) Release() {
	if q.release != nil {
		q.relOnce.Do(func() { close(q.release) })
	}
}

// jobID derives the deterministic identity: a sequence prefix for
// human ordering plus a hash committing to (seed, seq, canonical spec).
func jobID(seed int64, seq uint64, specJSON []byte) string {
	h := sha256.New()
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(seed))
	binary.BigEndian.PutUint64(hdr[8:16], seq)
	h.Write(hdr[:])
	h.Write(specJSON)
	return fmt.Sprintf("job-%06d-%s", seq, hex.EncodeToString(h.Sum(nil)[:12]))
}

// Submit normalizes, bounds-checks, and enqueues a spec. On success the
// returned job is pending and owns a fresh cancelable context. Failure
// modes: *fleet.SpecError (invalid spec), ErrTooLarge, ErrDraining,
// ErrQueueFull. Only ErrQueueFull is retryable as-is.
func (q *Queue) Submit(spec fleet.Spec) (*Job, error) {
	norm, err := spec.Normalized()
	if err != nil {
		var se *fleet.SpecError
		if !errors.As(err, &se) {
			err = &fleet.SpecError{Reason: "validate", Err: err}
		}
		return nil, err
	}
	if norm.Devices > q.opts.MaxDevices {
		return nil, fmt.Errorf("%w: %d devices (limit %d)", ErrTooLarge, norm.Devices, q.opts.MaxDevices)
	}
	specJSON, err := fleet.EncodeSpecJSON(norm)
	if err != nil {
		return nil, err
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return nil, ErrDraining
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		seq:      q.seq + 1,
		spec:     norm,
		specJSON: specJSON,
		prog:     fleet.NewProgress(),
		ctx:      ctx,
		cancel:   cancel,
		state:    StatePending,
		done:     make(chan struct{}),
	}
	j.id = jobID(q.opts.Seed, j.seq, specJSON)
	select {
	case q.fifo <- j:
	default:
		cancel()
		q.counts.rejectedFull++
		return nil, ErrQueueFull
	}
	q.seq = j.seq // advance only on acceptance
	q.jobs[j.id] = j
	return j, nil
}

// run executes one dequeued job on a worker.
func (q *Queue) run(j *Job) {
	if !j.claim() {
		// Canceled while pending; finish already ran.
		return
	}
	q.mu.Lock()
	q.counts.running++
	q.mu.Unlock()

	rep, err := fleet.RunWithProgress(j.ctx, j.spec, q.opts.Plane, j.prog)
	state := StateDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		state, rep = StateCanceled, nil
	default:
		state, rep = StateFailed, nil
	}
	j.finish(state, rep, err)

	q.mu.Lock()
	q.counts.running--
	q.noteFinishedLocked(j)
	q.mu.Unlock()
}

// noteFinishedLocked records a terminal transition and applies the
// finished-job retention bound. Callers hold q.mu.
func (q *Queue) noteFinishedLocked(j *Job) {
	switch j.State() {
	case StateDone:
		q.counts.done++
	case StateFailed:
		q.counts.failed++
	case StateCanceled:
		q.counts.canceled++
	}
	q.finished = append(q.finished, j.id)
	for len(q.finished) > q.opts.Retain {
		evict := q.finished[0]
		q.finished = q.finished[1:]
		delete(q.jobs, evict)
		q.counts.evicted++
	}
}

// Get looks up a job by ID.
func (q *Queue) Get(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel cancels a job. A pending job transitions to canceled
// immediately (its worker slot is skipped); a running job's context is
// canceled and the fleet engine stops at the next device-run boundary,
// after which its worker records the canceled state. Canceling a
// finished job is a no-op. Returns the job's state after the cancel
// took effect.
func (q *Queue) Cancel(id string) (State, error) {
	j, err := q.Get(id)
	if err != nil {
		return "", err
	}
	if j.cancelPending(fmt.Errorf("jobqueue: job %s: %w", id, context.Canceled)) {
		q.mu.Lock()
		q.noteFinishedLocked(j)
		q.mu.Unlock()
		return StateCanceled, nil
	}
	j.cancel() // running → engine stops soon; finished → no-op
	return j.State(), nil
}

// Drain stops intake and waits for in-flight and pending jobs to
// finish. If ctx expires first, every unfinished job is canceled (in
// sorted-ID order) and Drain waits for the workers to observe the
// cancellations before returning ctx's error. Safe to call more than
// once; later calls just wait.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.fifo)
	}
	q.mu.Unlock()
	q.Release() // a parked pool must be able to drain its FIFO

	idle := make(chan struct{})
	var join sync.WaitGroup
	join.Add(1)
	go func() {
		defer join.Done()
		q.workers.Wait()
		close(idle)
	}()
	var drainErr error
	select {
	case <-idle:
	case <-ctx.Done():
		drainErr = ctx.Err()
		q.cancelAll()
		<-idle
	}
	join.Wait()
	// Workers are idle: publish any warm bundles a canceled job left
	// dirty, so other processes sharing the store can still load them.
	if q.opts.Plane != nil {
		q.opts.Plane.Flush()
	}
	return drainErr
}

// cancelAll cancels every unfinished job, in sorted-ID order so the
// cancellation sequence is deterministic for a given job set.
func (q *Queue) cancelAll() {
	q.mu.Lock()
	ids := make([]string, 0, len(q.jobs))
	for id := range q.jobs {
		ids = append(ids, id)
	}
	q.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		j, err := q.Get(id)
		if err != nil {
			continue // evicted between snapshot and cancel
		}
		if !j.State().Finished() {
			// Ignore the returned state; Cancel on a finished job is a
			// no-op and ErrNotFound cannot happen while we hold the ID.
			_, _ = q.Cancel(id)
		}
	}
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Capacity:     q.opts.Capacity,
		Workers:      q.opts.Workers,
		Draining:     q.draining,
		Accepted:     q.seq,
		RejectedFull: q.counts.rejectedFull,
		Pending:      len(q.fifo),
		Running:      q.counts.running,
		Done:         q.counts.done,
		Failed:       q.counts.failed,
		Canceled:     q.counts.canceled,
		Retained:     len(q.jobs),
		Evicted:      q.counts.evicted,
	}
}
