package jobqueue

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"odrips/internal/fleet"
	"odrips/internal/sim"
)

// smallSpec is a fast, heterogeneous job: several run classes so
// progress and cancellation have boundaries to land on.
func smallSpec(name string) fleet.Spec {
	return fleet.Spec{
		Name:    name,
		Devices: 12,
		Horizon: 2 * sim.Minute,
		Shards:  3,
		Spread: fleet.Spread{
			DriftPPB:    []int64{0, 40},
			BatteryMWh:  []float64{30000, 36000},
			JitterSteps: []sim.Duration{0, 250 * sim.Millisecond},
		},
	}
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	<-j.Done()
}

func TestSubmitRunResult(t *testing.T) {
	q := New(Options{Workers: 2})
	defer func() {
		if err := q.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()

	j, err := q.Submit(smallSpec("basic"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 1 {
		t.Fatalf("seq %d", j.Seq())
	}
	waitDone(t, j)
	if st := j.State(); st != StateDone {
		t.Fatalf("state %s", st)
	}
	rep, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Devices != 12 {
		t.Fatalf("report for %d devices", rep.Devices)
	}
	ps := j.Progress()
	if !ps.Started || ps.DevicesDone != 12 || ps.CyclesDone != ps.CyclesTotal {
		t.Fatalf("progress incomplete at done: %+v", ps)
	}
	st := q.Stats()
	if st.Accepted != 1 || st.Done != 1 || st.Running != 0 || st.Pending != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDeterministicAggregates: the same spec through the queue and
// through fleet.Run directly produces byte-identical Aggregates — the
// queue adds scheduling, never physics.
func TestDeterministicAggregates(t *testing.T) {
	direct, err := fleet.Run(smallSpec("det"), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct.Aggregates)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		q := New(Options{Workers: workers})
		j1, err := q.Submit(smallSpec("det"))
		if err != nil {
			t.Fatal(err)
		}
		j2, err := q.Submit(smallSpec("det"))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j1)
		waitDone(t, j2)
		for _, j := range []*Job{j1, j2} {
			rep, err := j.Result()
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(rep.Aggregates)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("workers=%d job %s aggregates diverge:\n got %s\nwant %s", workers, j.ID(), got, want)
			}
		}
		if err := q.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentSubmitters: many goroutines submit distinct spec
// classes at once; every job's result matches its own class's golden
// regardless of completion order, and IDs commit to the right spec.
func TestConcurrentSubmitters(t *testing.T) {
	classes := []fleet.Spec{smallSpec("a"), smallSpec("b"), smallSpec("c")}
	classes[1].Devices = 8
	classes[2].Spread.DriftPPB = []int64{0, 40, 80}
	golden := make([]string, len(classes))
	for i, s := range classes {
		rep, err := fleet.Run(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep.Aggregates)
		if err != nil {
			t.Fatal(err)
		}
		golden[i] = string(b)
	}

	q := New(Options{Workers: 4, Capacity: 64})
	const perClass = 4
	var wg sync.WaitGroup
	jobs := make([]*Job, len(classes)*perClass)
	errs := make([]error, len(jobs))
	for i := range jobs {
		wg.Add(1)
		i := i
		go func() {
			defer wg.Done()
			jobs[i], errs[i] = q.Submit(classes[i%len(classes)])
		}()
	}
	wg.Wait()
	ids := make(map[string]bool)
	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if ids[j.ID()] {
			t.Fatalf("duplicate job ID %s", j.ID())
		}
		ids[j.ID()] = true
		waitDone(t, j)
		rep, err := j.Result()
		if err != nil {
			t.Fatalf("job %s: %v", j.ID(), err)
		}
		b, err := json.Marshal(rep.Aggregates)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != golden[i%len(classes)] {
			t.Fatalf("job %s (class %d) got another class's aggregates", j.ID(), i%len(classes))
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Done != uint64(len(jobs)) {
		t.Fatalf("done %d of %d", st.Done, len(jobs))
	}
}

// TestDeterministicIDs: job IDs are a pure function of (seed, sequence,
// canonical spec) — two queues with one seed mint identical IDs for an
// identical submission sequence, and the hash matches a by-hand
// recomputation from the job's own canonical spec bytes.
func TestDeterministicIDs(t *testing.T) {
	mint := func() []string {
		q := New(Options{Workers: 1, Seed: 7, Hold: true, Capacity: 8})
		var ids []string
		for _, s := range []fleet.Spec{smallSpec("x"), smallSpec("y"), smallSpec("x")} {
			j, err := q.Submit(s)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, j.ID())
		}
		q.Release()
		if err := q.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return ids
	}
	a, b := mint(), mint()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ID %d diverges across identical queues: %s vs %s", i, a[i], b[i])
		}
	}
	if a[0] == a[2] {
		t.Fatal("same spec at different sequence numbers must differ")
	}

	// Recompute ID 0 by hand from the public pieces.
	q := New(Options{Workers: 1, Seed: 7, Hold: true})
	j, err := q.Submit(smallSpec("x"))
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	h.Write([]byte{0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 1})
	h.Write(j.SpecJSON())
	want := fmt.Sprintf("job-%06d-%s", 1, hex.EncodeToString(h.Sum(nil)[:12]))
	if j.ID() != want {
		t.Fatalf("ID %s, recomputed %s", j.ID(), want)
	}
	q.Release()
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueFullAndSeq: a full FIFO rejects with ErrQueueFull, the
// rejection does not consume a sequence number, and released workers
// then drain every accepted job.
func TestQueueFullAndSeq(t *testing.T) {
	q := New(Options{Workers: 1, Capacity: 2, Hold: true})
	j1, err := q.Submit(smallSpec("q1"))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := q.Submit(smallSpec("q2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(smallSpec("q3")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v", err)
	}
	j4, err := q.Submit(smallSpec("q4")) // rejected q3 freed nothing; still full
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second overflow: %v (job %v)", err, j4)
	}
	if st := q.Stats(); st.Accepted != 2 || st.RejectedFull != 2 || st.Pending != 2 {
		t.Fatalf("stats %+v", st)
	}
	q.Release()
	waitDone(t, j1)
	waitDone(t, j2)
	// Sequence numbers skipped nothing: next acceptance is seq 3.
	j5, err := q.Submit(smallSpec("q5"))
	if err != nil {
		t.Fatal(err)
	}
	if j5.Seq() != 3 {
		t.Fatalf("seq %d after rejections (want 3)", j5.Seq())
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCancelPending: canceling a queued-but-unclaimed job finishes it
// immediately; the worker later skips its FIFO slot.
func TestCancelPending(t *testing.T) {
	q := New(Options{Workers: 1, Capacity: 4, Hold: true})
	j, err := q.Submit(smallSpec("pend"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := q.Cancel(j.ID())
	if err != nil || st != StateCanceled {
		t.Fatalf("cancel: state %s, err %v", st, err)
	}
	waitDone(t, j)
	if _, err := j.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("result of canceled job: %v", err)
	}
	if ps := j.Progress(); ps.Started {
		t.Fatal("canceled-while-pending job reports simulation progress")
	}
	q.Release()
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Canceled != 1 || st.Done != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCancelRunning: canceling mid-run stops the engine at a device
// boundary; the job lands in canceled with partial progress.
func TestCancelRunning(t *testing.T) {
	// Many drift classes → many phase-1 runs → a wide cancel window.
	s := smallSpec("run")
	s.Devices = 64
	s.Workers = 1
	s.Spread.DriftPPB = make([]int64, 64)
	for i := range s.Spread.DriftPPB {
		s.Spread.DriftPPB[i] = int64(i * 10)
	}
	q := New(Options{Workers: 1})
	j, err := q.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	for j.Progress().WarmRunsDone == 0 {
		if j.State().Finished() {
			t.Fatal("job finished before the cancel window opened")
		}
	}
	if _, err := q.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state %s", st)
	}
	if _, err := j.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("result: %v", err)
	}
	if ps := j.Progress(); ps.DevicesDone == ps.Devices && ps.CyclesDone == ps.CyclesTotal {
		t.Fatal("canceled run claims full completion")
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Canceled != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestDrain: draining refuses new work, finishes accepted work, and an
// expired drain context cancels what remains.
func TestDrain(t *testing.T) {
	q := New(Options{Workers: 2})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := q.Submit(smallSpec(fmt.Sprintf("d%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if st := j.State(); st != StateDone {
			t.Fatalf("job %s drained into %s", j.ID(), st)
		}
	}
	if _, err := q.Submit(smallSpec("late")); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v", err)
	}

	// Expired drain context: pending jobs held behind a parked pool are
	// canceled rather than waited for.
	q2 := New(Options{Workers: 1, Capacity: 4, Hold: true})
	j, err := q2.Submit(smallSpec("held"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := q2.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain with dead context: %v", err)
	}
	if st := j.State(); st != StateCanceled {
		t.Fatalf("held job drained into %s", st)
	}
}

// TestSubmitErrors: typed failures for bad and oversized specs.
func TestSubmitErrors(t *testing.T) {
	q := New(Options{Workers: 1, MaxDevices: 10})
	var se *fleet.SpecError
	if _, err := q.Submit(fleet.Spec{Devices: 0}); !errors.As(err, &se) {
		t.Fatalf("invalid spec: %v", err)
	}
	if _, err := q.Submit(smallSpec("big")); !errors.Is(err, ErrTooLarge) {
		t.Fatal("12 devices passed a MaxDevices of 10")
	}
	if _, err := q.Get("job-000001-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("lookup of unknown ID succeeded")
	}
	if _, err := q.Cancel("job-000001-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatal("cancel of unknown ID succeeded")
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRetention: finished jobs beyond Retain are evicted oldest-first;
// unfinished jobs are never evicted.
func TestRetention(t *testing.T) {
	q := New(Options{Workers: 1, Retain: 2, Capacity: 8})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := q.Submit(smallSpec(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		waitDone(t, j) // serialize so finish order == submit order
	}
	st := q.Stats()
	if st.Retained != 2 || st.Evicted != 2 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := q.Get(jobs[0].ID()); !errors.Is(err, ErrNotFound) {
		t.Fatal("oldest finished job still queryable past retention")
	}
	if _, err := q.Get(jobs[3].ID()); err != nil {
		t.Fatalf("newest finished job evicted: %v", err)
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
