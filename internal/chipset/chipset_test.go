package chipset

import (
	"testing"

	"odrips/internal/aonio"
	"odrips/internal/clock"
	"odrips/internal/sim"
)

type bench struct {
	sched  *sim.Scheduler
	xtal24 *clock.Oscillator
	xtal32 *clock.Oscillator
	ring   *aonio.Ring
	hub    *Hub
}

func newBench(t *testing.T) *bench {
	t.Helper()
	s := sim.NewScheduler()
	x24 := clock.NewOscillator(s, "xtal24", 24_000_000, 0, 10*sim.Microsecond)
	x32 := clock.NewOscillator(s, "xtal32", 32_768, 0, 0)
	x24.PowerOn()
	x32.PowerOn()
	s.RunFor(sim.Millisecond) // both crystals stable
	ring := aonio.NewRing(aonio.StandardIOs())
	hub := New(s, x24, x32, aonio.NewFET(ring))
	if err := hub.Calibrate(); err != nil {
		t.Fatal(err)
	}
	return &bench{sched: s, xtal24: x24, xtal32: x32, ring: ring, hub: hub}
}

func TestCalibration(t *testing.T) {
	b := newBench(t)
	cal := b.hub.Calibration()
	if cal == nil || cal.IntBits != 10 || cal.FracBits != 21 {
		t.Fatalf("calibration = %+v", cal)
	}
	if b.hub.Unit() == nil {
		t.Fatal("unit not built")
	}
}

func TestAdoptBeforeCalibrate(t *testing.T) {
	s := sim.NewScheduler()
	x24 := clock.NewOscillator(s, "x24", 24_000_000, 0, 0)
	x32 := clock.NewOscillator(s, "x32", 32_768, 0, 0)
	x24.PowerOn()
	x32.PowerOn()
	hub := New(s, x24, x32, nil)
	if err := hub.AdoptTimer(0, nil); err == nil {
		t.Fatal("AdoptTimer before calibration succeeded")
	}
}

func TestTimerWakeFlow(t *testing.T) {
	b := newBench(t)
	var woke WakeSource = -1
	var wokeAt sim.Time
	b.hub.OnWake = func(src WakeSource, at sim.Time) { woke, wokeAt = src, at }

	adopted := false
	if err := b.hub.AdoptTimer(1_000_000, func(sim.Time) {
		adopted = true
		if err := b.hub.ShutFastCrystal(); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(50 * sim.Microsecond)
	if !adopted || !b.hub.Hosting() {
		t.Fatal("timer not adopted")
	}
	if b.xtal24.On() {
		t.Fatal("24 MHz crystal still on after ShutFastCrystal")
	}
	// Wake ~10 ms of fast-clock counts later.
	target := uint64(1_000_000 + 240_000)
	if err := b.hub.ArmTimerWake(target); err != nil {
		t.Fatal(err)
	}
	start := b.sched.Now()
	b.sched.RunFor(sim.Second)
	if woke != WakeTimer {
		t.Fatalf("wake source = %v", woke)
	}
	elapsed := wokeAt.Sub(start)
	if elapsed < 9*sim.Millisecond || elapsed > 11*sim.Millisecond {
		t.Fatalf("timer wake after %v, want ~10ms", elapsed)
	}
	if b.hub.WakeCounts()[WakeTimer] != 1 {
		t.Fatal("wake count wrong")
	}
}

func TestRestoreFastTimerRoundTrip(t *testing.T) {
	b := newBench(t)
	if err := b.hub.AdoptTimer(500, func(sim.Time) {
		if err := b.hub.ShutFastCrystal(); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(100 * sim.Millisecond)
	var restored uint64
	if err := b.hub.RestoreFastTimer(func(v uint64, at sim.Time) { restored = v }); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(10 * sim.Millisecond)
	if b.hub.Hosting() {
		t.Fatal("still hosting after restore")
	}
	// ~100 ms at 24 MHz = 2.4e6 counts.
	if restored < 2_390_000 || restored > 2_500_000 {
		t.Fatalf("restored value = %d, want ~2.4e6", restored)
	}
	if !b.xtal24.On() {
		t.Fatal("24 MHz crystal off after restore")
	}
}

func TestRestoreWithoutHostingFails(t *testing.T) {
	b := newBench(t)
	if err := b.hub.RestoreFastTimer(nil); err == nil {
		t.Fatal("RestoreFastTimer while not hosting succeeded")
	}
	if err := b.hub.ShutFastCrystal(); err == nil {
		t.Fatal("ShutFastCrystal while not hosting succeeded")
	}
	if err := b.hub.ArmTimerWake(1); err == nil {
		t.Fatal("ArmTimerWake while not hosting succeeded")
	}
}

func TestThermalWakeSlowSampled(t *testing.T) {
	b := newBench(t)
	var woke WakeSource = -1
	var wokeAt sim.Time
	b.hub.OnWake = func(src WakeSource, at sim.Time) { woke, wokeAt = src, at }
	if err := b.hub.MonitorThermal(b.xtal32); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(sim.Millisecond)
	if err := b.hub.ThermalPin().Drive(true); err != nil {
		t.Fatal(err)
	}
	driveAt := b.sched.Now()
	b.sched.RunFor(sim.Millisecond)
	if woke != WakeThermal {
		t.Fatalf("wake = %v, want thermal", woke)
	}
	// Detection quantized to the 32 kHz sampler: <= ~30.5 us.
	if lat := wokeAt.Sub(driveAt); lat > 31*sim.Microsecond {
		t.Fatalf("thermal detection latency = %v", lat)
	}
}

func TestExternalWakeQuantizedWhileHosting(t *testing.T) {
	b := newBench(t)
	var wokeAt sim.Time
	b.hub.OnWake = func(src WakeSource, at sim.Time) { wokeAt = at }
	if err := b.hub.AdoptTimer(0, nil); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(40 * sim.Microsecond) // complete hand-over
	at := b.sched.Now()
	b.hub.ExternalWake()
	b.sched.RunFor(100 * sim.Microsecond)
	if wokeAt == 0 {
		t.Fatal("external wake never fired")
	}
	// Must land exactly on a 32 kHz edge.
	_, edge, _ := b.xtal32.NextEdge(wokeAt)
	if edge != wokeAt {
		t.Fatalf("hosted external wake at %v not on a slow edge", wokeAt)
	}
	lat := wokeAt.Sub(at)
	if lat > 31*sim.Microsecond {
		t.Fatalf("hosted external wake latency = %v", lat)
	}
}

func TestExternalWakeImmediateWhenNotHosting(t *testing.T) {
	b := newBench(t)
	var woke bool
	b.hub.OnWake = func(WakeSource, sim.Time) { woke = true }
	b.hub.ExternalWake()
	if !woke {
		t.Fatal("baseline external wake not immediate")
	}
}

func TestWakeLatchOneShot(t *testing.T) {
	b := newBench(t)
	count := 0
	b.hub.OnWake = func(WakeSource, sim.Time) { count++ }
	b.hub.ExternalWake()
	b.hub.ExternalWake()
	if count != 1 {
		t.Fatalf("wake fired %d times before latch reset", count)
	}
	b.hub.ResetWakeLatch()
	b.hub.ExternalWake()
	if count != 2 {
		t.Fatalf("wake after latch reset: %d", count)
	}
}

func TestFETControl(t *testing.T) {
	b := newBench(t)
	if err := b.hub.GateProcessorIOs(); err != nil {
		t.Fatal(err)
	}
	if !b.ring.Gated() {
		t.Fatal("ring not gated")
	}
	if err := b.hub.ReleaseProcessorIOs(); err != nil {
		t.Fatal(err)
	}
	if b.ring.Gated() {
		t.Fatal("ring still gated")
	}
}

func TestFETMissing(t *testing.T) {
	s := sim.NewScheduler()
	x24 := clock.NewOscillator(s, "x24", 24_000_000, 0, 0)
	x32 := clock.NewOscillator(s, "x32", 32_768, 0, 0)
	x24.PowerOn()
	x32.PowerOn()
	hub := New(s, x24, x32, nil)
	if err := hub.GateProcessorIOs(); err == nil {
		t.Fatal("gating without FET succeeded")
	}
}

func TestDoubleAdoptFails(t *testing.T) {
	b := newBench(t)
	if err := b.hub.AdoptTimer(0, nil); err != nil {
		t.Fatal(err)
	}
	b.sched.RunFor(40 * sim.Microsecond)
	if err := b.hub.AdoptTimer(0, nil); err == nil {
		t.Fatal("double adopt succeeded")
	}
}
