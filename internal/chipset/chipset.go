// Package chipset models the Sunrise-Point-like chipset as the wake-event
// "hub" of ODRIPS (§4–§5): it hosts the fast/slow timer pair and the switch
// protocol, monitors the EC thermal line through a spare GPIO, drives the
// board FET that gates the processor's AON IO rail, and controls the 24 MHz
// crystal during the idle window.
package chipset

import (
	"fmt"

	"odrips/internal/aonio"
	"odrips/internal/clock"
	"odrips/internal/gpio"
	"odrips/internal/sim"
	"odrips/internal/timer"
)

// WakeSource labels what woke the platform.
type WakeSource int

const (
	// WakeTimer: the armed timer target was reached.
	WakeTimer WakeSource = iota
	// WakeThermal: the embedded controller raised the thermal line.
	WakeThermal
	// WakeExternal: a peripheral wake (network packet, user input) arrived
	// through the chipset's always-on domain.
	WakeExternal
)

var wakeNames = [...]string{"timer", "thermal", "external"}

// String returns the wake source name.
func (w WakeSource) String() string {
	if w < 0 || int(w) >= len(wakeNames) {
		return fmt.Sprintf("WakeSource(%d)", int(w))
	}
	return wakeNames[w]
}

// Hub is the chipset's always-on wake logic.
type Hub struct {
	sched  *sim.Scheduler
	xtal24 *clock.Oscillator
	xtal32 *clock.Oscillator
	dom24  *clock.Domain // chipset-internal 24 MHz domain (fast timer, PML)

	bank       *gpio.Bank
	fetPin     *gpio.Pin
	thermalPin *gpio.Pin
	fet        *aonio.FET

	unit        *timer.Unit
	calibration *timer.CalibrationResult

	// OnWake fires once per idle period on the first wake event.
	OnWake func(src WakeSource, at sim.Time)

	hosting   bool // chipset currently owns platform timekeeping
	wakeFired bool
	wakeEv    sim.Event

	wakes map[WakeSource]uint64
}

// New assembles a hub. fet may be nil when the board has no AON IO gate
// (pure-baseline builds).
func New(sched *sim.Scheduler, xtal24, xtal32 *clock.Oscillator, fet *aonio.FET) *Hub {
	bank := gpio.NewBank(sched)
	return &Hub{
		sched:      sched,
		xtal24:     xtal24,
		xtal32:     xtal32,
		dom24:      clock.NewDomain("chipset.clk24", xtal24),
		bank:       bank,
		fetPin:     bank.Claim("fet-control", gpio.Output),
		thermalPin: bank.Claim("ec-thermal", gpio.Input),
		fet:        fet,
		wakes:      make(map[WakeSource]uint64),
	}
}

// Dom24 returns the chipset's 24 MHz clock domain (PML and fast timer).
func (h *Hub) Dom24() *clock.Domain { return h.dom24 }

// ThermalPin returns the EC thermal input (the EC model drives it).
func (h *Hub) ThermalPin() *gpio.Pin { return h.thermalPin }

// Unit returns the timer switch unit (nil before calibration).
func (h *Hub) Unit() *timer.Unit { return h.unit }

// Calibration returns the Step calibration result (nil before Calibrate).
func (h *Hub) Calibration() *timer.CalibrationResult { return h.calibration }

// Hosting reports whether the chipset currently owns timekeeping.
func (h *Hub) Hosting() bool { return h.hosting }

// WakeFired reports whether the wake latch is set (a wake was delivered
// and ResetWakeLatch has not run since).
func (h *Hub) WakeFired() bool { return h.wakeFired }

// ReplayAddWakes bulk-advances a wake-source counter by n, standing in
// for n fireWake calls whose cycles the platform replayed. Only the
// statistics move; the wake callback is untouched, and the latch is
// restored separately via ReplayRestoreWakeLatch.
func (h *Hub) ReplayAddWakes(src WakeSource, n uint64) { h.wakes[src] += n }

// ReplayRestoreWakeLatch forces the wake latch to a recorded
// end-of-cycle value. A completed deep-idle cycle leaves the latch set
// until the next idle entry re-arms it, so a replayed cycle must
// reproduce that state for the boundary to match the simulated path.
func (h *Hub) ReplayRestoreWakeLatch(fired bool) { h.wakeFired = fired }

// GPIOPins returns the chipset's claimed GPIO pins sorted by name, for
// the platform fast-forward fingerprint.
func (h *Hub) GPIOPins() []*gpio.Pin { return h.bank.Pins() }

// WakeCounts returns per-source wake statistics.
func (h *Hub) WakeCounts() map[WakeSource]uint64 {
	out := make(map[WakeSource]uint64, len(h.wakes))
	for k, v := range h.wakes {
		out[k] = v
	}
	return out
}

// Calibrate measures the Step once (platform reset flow, §4.1.3) and
// builds the timer switch unit. Both crystals must be running.
func (h *Hub) Calibrate() error {
	res, err := timer.CalibrateNow(h.sched, h.xtal24, h.xtal32)
	if err != nil {
		return fmt.Errorf("chipset: calibration: %w", err)
	}
	h.calibration = &res
	h.unit = timer.NewUnit(h.sched, h.dom24, h.xtal32, res.Step)
	return nil
}

// AdoptTimer takes over timekeeping: the (PML-compensated) main timer value
// lands in the fast timer, and at the next 32 kHz edge counting moves to
// the slow timer. done fires at that edge; the 24 MHz crystal may be shut
// afterwards.
func (h *Hub) AdoptTimer(value uint64, done func(at sim.Time)) error {
	if h.unit == nil {
		return fmt.Errorf("chipset: AdoptTimer before calibration")
	}
	if h.hosting {
		return fmt.Errorf("chipset: already hosting timekeeping")
	}
	h.wakeFired = false
	return h.unit.EnterSlow(value, func(at sim.Time) {
		h.hosting = true
		if done != nil {
			done(at)
		}
	})
}

// ArmTimerWake schedules a timer wake at the given platform timer value.
// Must be called while hosting (ODRIPS idle window).
func (h *Hub) ArmTimerWake(target uint64) error {
	if !h.hosting {
		return fmt.Errorf("chipset: ArmTimerWake while not hosting")
	}
	ev, err := h.unit.WakeAt(target, "chipset.timer-wake", func() {
		h.fireWake(WakeTimer)
	})
	if err != nil {
		return err
	}
	h.sched.Cancel(h.wakeEv)
	h.wakeEv = ev
	return nil
}

// MonitorThermal samples the EC thermal line with the given oscillator
// (24 MHz in baseline DRIPS, 32.768 kHz in ODRIPS, §5.2). A rising sample
// fires a thermal wake.
func (h *Hub) MonitorThermal(sampler *clock.Oscillator) error {
	return h.thermalPin.WatchInput(sampler, func(rising bool, at sim.Time) {
		if rising {
			h.fireWake(WakeThermal)
		}
	})
}

// StopThermalMonitor stops sampling the EC line.
func (h *Hub) StopThermalMonitor() { h.thermalPin.Unwatch() }

// ExternalWake injects a peripheral wake event. While the chipset AON
// domain is monitored with the slow clock (hosting), detection is
// quantized to the next 32 kHz edge; otherwise it is detected within a
// 24 MHz cycle (treated as immediate).
func (h *Hub) ExternalWake() {
	if h.hosting {
		h.xtal32.ScheduleEdge("chipset.external-wake", func() {
			h.fireWake(WakeExternal)
		})
		return
	}
	h.fireWake(WakeExternal)
}

func (h *Hub) fireWake(src WakeSource) {
	if h.wakeFired {
		return
	}
	h.wakeFired = true
	h.wakes[src]++
	h.sched.Cancel(h.wakeEv)
	h.wakeEv = sim.Event{}
	if h.OnWake != nil {
		h.OnWake(src, h.sched.Now())
	}
}

// ResetWakeLatch re-arms the one-shot wake latch (called when the platform
// commits to a new idle period).
func (h *Hub) ResetWakeLatch() { h.wakeFired = false }

// GateProcessorIOs drives the FET to cut the processor AON IO rail (§5.2).
func (h *Hub) GateProcessorIOs() error {
	if h.fet == nil {
		return fmt.Errorf("chipset: no FET on this board")
	}
	if err := h.fetPin.SetOutput(true); err != nil {
		return err
	}
	h.fet.Drive(true)
	return nil
}

// ReleaseProcessorIOs reconnects the processor AON IO rail.
func (h *Hub) ReleaseProcessorIOs() error {
	if h.fet == nil {
		return fmt.Errorf("chipset: no FET on this board")
	}
	if err := h.fetPin.SetOutput(false); err != nil {
		return err
	}
	h.fet.Drive(false)
	return nil
}

// ShutFastCrystal gates the chipset 24 MHz domain and powers the crystal
// off. Only legal while the slow timer hosts timekeeping.
func (h *Hub) ShutFastCrystal() error {
	if !h.hosting {
		return fmt.Errorf("chipset: ShutFastCrystal while fast timer still in use")
	}
	h.dom24.Gate()
	h.xtal24.PowerOff()
	return nil
}

// RestoreFastTimer powers the 24 MHz crystal back on, ungates the domain,
// and switches counting back to the fast timer at a 32 kHz edge. done
// receives the reloaded timer value for the PML transfer back to the
// processor.
func (h *Hub) RestoreFastTimer(done func(value uint64, at sim.Time)) error {
	if !h.hosting {
		return fmt.Errorf("chipset: RestoreFastTimer while not hosting")
	}
	h.xtal24.PowerOn()
	h.dom24.Ungate()
	return h.unit.ExitFast(func(v uint64, at sim.Time) {
		h.hosting = false
		if done != nil {
			done(v, at)
		}
	})
}
