package measure

import (
	"math"
	"testing"

	"odrips/internal/power"
	"odrips/internal/sim"
)

func TestAnalyzerCapturesConstantPower(t *testing.T) {
	s := sim.NewScheduler()
	a, err := NewAnalyzer(s, Channel{Name: "battery", Probe: func() float64 { return 60 }})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Millisecond)
	a.Stop()
	st, err := a.ChannelStats(0)
	if err != nil {
		t.Fatal(err)
	}
	// 10 ms at 50 us = 200 samples (+1 for the t=0 sample).
	if st.Samples < 200 || st.Samples > 201 {
		t.Fatalf("samples = %d", st.Samples)
	}
	if st.AvgMW != 60 || st.MinMW != 60 || st.MaxMW != 60 {
		t.Fatalf("stats = %+v", st)
	}
	wantJ := 60e-3 * 0.010
	if math.Abs(st.EnergyJ-wantJ) > wantJ*0.01 {
		t.Fatalf("energy = %v, want ~%v", st.EnergyJ, wantJ)
	}
}

func TestAnalyzerTracksStep(t *testing.T) {
	s := sim.NewScheduler()
	level := 100.0
	a, err := NewAnalyzer(s, Channel{Name: "x", Probe: func() float64 { return level }})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Millisecond)
	level = 10
	s.RunFor(5 * sim.Millisecond)
	a.Stop()
	st, err := a.ChannelStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.AvgMW-55) > 1.0 {
		t.Fatalf("avg = %v, want ~55", st.AvgMW)
	}
	if st.MinMW != 10 || st.MaxMW != 100 {
		t.Fatalf("min/max = %v/%v", st.MinMW, st.MaxMW)
	}
}

func TestAnalyzerAgainstExactMeter(t *testing.T) {
	// Sampled energy must agree with the meter's exact integration within
	// the sampling error bound — the invariant behind using the analyzer
	// as the "measurement" instrument.
	s := sim.NewScheduler()
	m := power.NewMeter(s, 1.0)
	c := m.Register("load", "g", power.Delivered)
	a, err := NewAnalyzer(s, Channel{Name: "battery", Probe: m.BatteryPowerMW})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot()
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	// A few power steps, each an exact multiple of the sampling interval
	// so rectangle integration is exact.
	levels := []float64{60, 3000, 60, 1000, 42}
	for _, mw := range levels {
		m.Set(c, mw)
		s.RunFor(10 * sim.Millisecond)
	}
	a.Stop()
	exact := m.Snapshot().Since(before).TotalJ()
	st, err := a.ChannelStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.EnergyJ-exact) > exact*0.005 {
		t.Fatalf("sampled %.6f J vs exact %.6f J", st.EnergyJ, exact)
	}
}

func TestChannelLimits(t *testing.T) {
	s := sim.NewScheduler()
	if _, err := NewAnalyzer(s); err == nil {
		t.Fatal("zero channels accepted")
	}
	probe := func() float64 { return 0 }
	chs := make([]Channel, 5)
	for i := range chs {
		chs[i] = Channel{Name: "c", Probe: probe}
	}
	if _, err := NewAnalyzer(s, chs...); err == nil {
		t.Fatal("five channels accepted")
	}
	if _, err := NewAnalyzer(s, Channel{Name: "dead"}); err == nil {
		t.Fatal("probe-less channel accepted")
	}
}

func TestIntervalRules(t *testing.T) {
	s := sim.NewScheduler()
	a, err := NewAnalyzer(s, Channel{Name: "x", Probe: func() float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetInterval(0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := a.SetInterval(sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.SetInterval(sim.Second); err == nil {
		t.Fatal("interval change while running accepted")
	}
	if err := a.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	a.Stop()
	a.Stop() // idempotent
}

func TestStatsErrors(t *testing.T) {
	s := sim.NewScheduler()
	a, err := NewAnalyzer(s, Channel{Name: "x", Probe: func() float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ChannelStats(0); err == nil {
		t.Fatal("stats on empty capture accepted")
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	a.Stop()
	if _, err := a.ChannelStats(7); err == nil {
		t.Fatal("out-of-range channel accepted")
	}
	if len(a.ChannelNames()) != 1 {
		t.Fatal("channel names wrong")
	}
	a.Reset()
	if len(a.Samples()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestStopAtDrainsQueue(t *testing.T) {
	s := sim.NewScheduler()
	a, err := NewAnalyzer(s, Channel{Name: "x", Probe: func() float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	a.StopAt(sim.Time(10 * sim.Millisecond))
	s.Run() // must terminate because the ticker dies at the stop event
	if s.Now() != sim.Time(10*sim.Millisecond) {
		t.Fatalf("queue drained at %v", s.Now())
	}
	if len(a.Samples()) == 0 {
		t.Fatal("no samples captured")
	}
}
