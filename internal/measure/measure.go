// Package measure models the paper's measurement infrastructure (§7,
// Fig. 5): a DC power analyzer in the style of the Keysight N6705B with an
// N6781A source-measurement unit — four analog channels sampled on a fixed
// 50-microsecond interval — plus summary statistics over the captured
// trace. The experiments use it to "measure" the simulated platform the
// same way the authors measured silicon, and to validate the analytic
// Equation-1 model against sampled data.
package measure

import (
	"fmt"
	"math"

	"odrips/internal/sim"
)

// SamplingInterval is the paper's analyzer configuration (§7).
const SamplingInterval = 50 * sim.Microsecond

// MaxChannels matches the four analog channels of the instrument.
const MaxChannels = 4

// Channel is one analog input: a name and a probe returning instantaneous
// power in milliwatts.
type Channel struct {
	Name  string
	Probe func() float64
}

// Sample is one captured point.
type Sample struct {
	At sim.Time
	MW []float64 // one value per channel
}

// Analyzer captures synchronized samples of up to four channels.
type Analyzer struct {
	sched    *sim.Scheduler
	channels []Channel
	interval sim.Duration

	samples []Sample
	ticker  *sim.Ticker
	running bool
}

// NewAnalyzer builds an analyzer with the standard 50 us interval.
func NewAnalyzer(sched *sim.Scheduler, channels ...Channel) (*Analyzer, error) {
	if len(channels) == 0 {
		return nil, fmt.Errorf("measure: no channels")
	}
	if len(channels) > MaxChannels {
		return nil, fmt.Errorf("measure: %d channels exceed the instrument's %d", len(channels), MaxChannels)
	}
	for _, c := range channels {
		if c.Probe == nil {
			return nil, fmt.Errorf("measure: channel %q has no probe", c.Name)
		}
	}
	return &Analyzer{sched: sched, channels: channels, interval: SamplingInterval}, nil
}

// SetInterval overrides the sampling interval (coarser captures for long
// windows). Only legal while stopped.
func (a *Analyzer) SetInterval(d sim.Duration) error {
	if a.running {
		return fmt.Errorf("measure: interval change while running")
	}
	if d <= 0 {
		return fmt.Errorf("measure: non-positive interval")
	}
	a.interval = d
	return nil
}

// Start begins sampling at the next interval boundary.
func (a *Analyzer) Start() error {
	if a.running {
		return fmt.Errorf("measure: already running")
	}
	a.running = true
	a.ticker = a.sched.Every(a.sched.Now(), a.interval, "analyzer.sample", func(at sim.Time) {
		s := Sample{At: at, MW: make([]float64, len(a.channels))}
		for i, c := range a.channels {
			s.MW[i] = c.Probe()
		}
		a.samples = append(a.samples, s)
	})
	return nil
}

// StopAt schedules the end of the capture. Required when the capture runs
// under a scheduler loop that drains the event queue (platform.RunCycles):
// without a scheduled stop, the sampling ticker re-arms forever and the
// run never terminates.
func (a *Analyzer) StopAt(t sim.Time) sim.Event {
	return a.sched.At(t, "analyzer.stop", a.Stop)
}

// Stop ends the capture.
func (a *Analyzer) Stop() {
	if !a.running {
		return
	}
	a.running = false
	a.ticker.Stop()
}

// Samples returns the captured trace.
func (a *Analyzer) Samples() []Sample { return a.samples }

// Reset clears the capture buffer.
func (a *Analyzer) Reset() { a.samples = nil }

// ChannelNames returns the configured channel names.
func (a *Analyzer) ChannelNames() []string {
	names := make([]string, len(a.channels))
	for i, c := range a.channels {
		names[i] = c.Name
	}
	return names
}

// Stats summarizes one channel of a capture.
type Stats struct {
	Samples int
	AvgMW   float64
	MinMW   float64
	MaxMW   float64
	// EnergyJ is the rectangle-rule integral of the trace.
	EnergyJ float64
}

// ChannelStats computes summary statistics for channel index ch.
func (a *Analyzer) ChannelStats(ch int) (Stats, error) {
	if ch < 0 || ch >= len(a.channels) {
		return Stats{}, fmt.Errorf("measure: channel %d out of range", ch)
	}
	if len(a.samples) == 0 {
		return Stats{}, fmt.Errorf("measure: empty capture")
	}
	st := Stats{Samples: len(a.samples), MinMW: math.Inf(1), MaxMW: math.Inf(-1)}
	var sum float64
	for _, s := range a.samples {
		v := s.MW[ch]
		sum += v
		st.MinMW = math.Min(st.MinMW, v)
		st.MaxMW = math.Max(st.MaxMW, v)
	}
	st.AvgMW = sum / float64(len(a.samples))
	st.EnergyJ = sum * 1e-3 * a.interval.Seconds()
	return st, nil
}
