package odrips_test

import (
	"fmt"
	"log"

	"odrips"
)

// ExampleNewPlatform runs the paper's headline comparison: baseline DRIPS
// against full ODRIPS on an identical connected-standby workload.
func ExampleNewPlatform() {
	run := func(cfg odrips.Config) odrips.Result {
		p, err := odrips.NewPlatform(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.RunCycles(odrips.FixedCycles(2, 0, 30*odrips.Second))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(odrips.DefaultConfig())
	opt := run(odrips.ODRIPSConfig())
	fmt.Printf("baseline: %.0f mW in DRIPS\n", base.IdlePowerMW())
	fmt.Printf("ODRIPS:   %.0f mW in ODRIPS\n", opt.IdlePowerMW())
	fmt.Printf("saving:   %.0f%%\n", 100*(base.AvgPowerMW-opt.AvgPowerMW)/base.AvgPowerMW)
	// Output:
	// baseline: 60 mW in DRIPS
	// ODRIPS:   43 mW in ODRIPS
	// saving:   22%
}

// ExampleBreakEven computes the minimum idle residency at which ODRIPS
// pays for its longer transitions (the blue line of Fig. 6(a)).
func ExampleBreakEven() {
	run := func(cfg odrips.Config) odrips.Result {
		p, err := odrips.NewPlatform(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.RunCycles(odrips.FixedCycles(2, 0, 30*odrips.Second))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(odrips.DefaultConfig())
	opt := run(odrips.ODRIPSConfig())
	be, err := odrips.BreakEven(base.CycleEnergy, opt.CycleEnergy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ODRIPS pays off beyond %.1f ms of idle residency\n", be.Milliseconds())
	// Output:
	// ODRIPS pays off beyond 6.4 ms of idle residency
}

// ExampleConfig_Name shows the configuration labels used throughout the
// paper's figures.
func ExampleConfig_Name() {
	fmt.Println(odrips.DefaultConfig().Name())
	fmt.Println(odrips.DefaultConfig().WithTechniques(odrips.WakeUpOff).Name())
	fmt.Println(odrips.DefaultConfig().WithTechniques(odrips.WakeUpOff | odrips.AONIOGate).Name())
	fmt.Println(odrips.DefaultConfig().WithTechniques(odrips.CtxSGXDRAM).Name())
	fmt.Println(odrips.ODRIPSConfig().Name())
	// Output:
	// Baseline
	// WAKE-UP-OFF
	// AON-IO-GATE
	// CTX-SGX-DRAM
	// ODRIPS
}

// ExampleCalibration reproduces the §4.1.3 fixed-point geometry.
func ExampleCalibration() {
	r, err := odrips.Calibration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Step is Q%d.%d fixed point; calibration counts 2^%d slow cycles\n",
		r.IntBits, r.FracBits, r.FracBits)
	fmt.Printf("quantization drift stays under %.2f ppb\n", r.DriftPPB)
	// Output:
	// Step is Q10.21 fixed point; calibration counts 2^21 slow cycles
	// quantization drift stays under 0.65 ppb
}
