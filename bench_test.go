package odrips

// One benchmark per table and figure of the paper's evaluation. Each runs
// the corresponding experiment end-to-end on the simulated platform and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole results section. Paper anchors, for comparison:
// Fig. 1(b) ~60 mW DRIPS total; Fig. 2 ~99.5% DRIPS residency; Fig. 6(a)
// reductions 6/13/8/22% with break-evens 6.6/6.3/7.4/6.5 ms; Fig. 6(b)
// -1.4%/+1%; Fig. 6(c) -0.3%/-0.7%; Fig. 6(d) ODRIPS-PCM -37%; §6.3 context
// save/restore 18/13 µs; §4.1.3 m=10, f=21, 1 ppb; §7 model accuracy ~95%.

import (
	"testing"

	"odrips/internal/memostore"
	"odrips/internal/sim"
)

// withWarmMemoStore installs a fresh RW persistent memo store for a warm
// benchmark and restores the previous process-wide store afterwards.
func withWarmMemoStore(b *testing.B) {
	b.Helper()
	prev := memostore.Default()
	s, err := memostore.Open(b.TempDir(), memostore.RW)
	if err != nil {
		b.Fatal(err)
	}
	memostore.SetDefault(s)
	ResetPersistentMemos()
	ResetPointCache()
	b.Cleanup(func() {
		memostore.SetDefault(prev)
		ResetPersistentMemos()
		ResetPointCache()
	})
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(Table1().Rows) == 0 {
			b.Fatal("empty Table 1")
		}
	}
}

func BenchmarkFig1b(b *testing.B) {
	b.ReportAllocs()
	var total float64
	for i := 0; i < b.N; i++ {
		r, err := Fig1b()
		if err != nil {
			b.Fatal(err)
		}
		total = r.TotalMW
	}
	b.ReportMetric(total, "DRIPS_mW")
}

func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	var avg, resid float64
	for i := 0; i < b.N; i++ {
		r, err := Fig2()
		if err != nil {
			b.Fatal(err)
		}
		avg = r.AverageMW
		for _, row := range r.Rows {
			if row.State == Idle {
				resid = row.Residency
			}
		}
	}
	b.ReportMetric(avg, "avg_mW")
	b.ReportMetric(100*resid, "DRIPS_residency_%")
}

func BenchmarkFig3b(b *testing.B) {
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		r, err := Fig3b()
		if err != nil {
			b.Fatal(err)
		}
		events = len(r.Events)
	}
	b.ReportMetric(float64(events), "handover_milestones")
}

func BenchmarkCalibration(b *testing.B) {
	b.ReportAllocs()
	var drift float64
	for i := 0; i < b.N; i++ {
		r, err := Calibration()
		if err != nil {
			b.Fatal(err)
		}
		drift = r.MeasuredDriftPPB
	}
	b.ReportMetric(drift, "drift_ppb")
}

func BenchmarkFig6a(b *testing.B) {
	b.ReportAllocs()
	var odripsRed, odripsBE float64
	for i := 0; i < b.N; i++ {
		r, err := Fig6a(SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Name == "ODRIPS" {
				odripsRed = row.ReductionPct
				odripsBE = row.BreakEven.Milliseconds()
			}
		}
	}
	b.ReportMetric(odripsRed, "ODRIPS_reduction_%")
	b.ReportMetric(odripsBE, "ODRIPS_breakeven_ms")
}

func BenchmarkFig6aSweep(b *testing.B) {
	b.ReportAllocs()
	// The empirical residency sweep (coarse grid; PaperSweepGrid() for the
	// full 0.6 ms–1 s @0.1 ms run).
	var be float64
	for i := 0; i < b.N; i++ {
		ResetPointCache() // measure cold-cache sweeps, not memo hits
		r, err := Fig6a(DefaultSweep())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Name == "ODRIPS" && row.SweepBE > 0 {
				be = row.SweepBE.Milliseconds()
			}
		}
	}
	b.ReportMetric(be, "ODRIPS_sweep_breakeven_ms")
}

// BenchmarkFig6aSweepWarm is the sweep replayed from a populated
// persistent memo store: each iteration drops the in-process caches, so
// the measured cost is store loads plus report assembly, not simulation.
func BenchmarkFig6aSweepWarm(b *testing.B) {
	b.ReportAllocs()
	withWarmMemoStore(b)
	run := func() {
		ResetPersistentMemos()
		ResetPointCache() // warm = disk, not RAM
		if _, err := Fig6a(DefaultSweep()); err != nil {
			b.Fatal(err)
		}
	}
	run() // populate the store (cold, untimed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkFig6b(b *testing.B) {
	b.ReportAllocs()
	var saving1GHz float64
	for i := 0; i < b.N; i++ {
		r, err := Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		saving1GHz = r.Rows[1].ReductionPct
	}
	b.ReportMetric(saving1GHz, "1GHz_saving_%")
}

func BenchmarkFig6c(b *testing.B) {
	b.ReportAllocs()
	var saving800 float64
	for i := 0; i < b.N; i++ {
		r, err := Fig6c()
		if err != nil {
			b.Fatal(err)
		}
		saving800 = r.Rows[2].ReductionPct
	}
	b.ReportMetric(saving800, "DDR3L800_saving_%")
}

func BenchmarkFig6d(b *testing.B) {
	b.ReportAllocs()
	var pcmRed float64
	for i := 0; i < b.N; i++ {
		r, err := Fig6d(SweepOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Name == "ODRIPS-PCM" {
				pcmRed = row.ReductionPct
			}
		}
	}
	b.ReportMetric(pcmRed, "PCM_reduction_%")
}

func BenchmarkCtxLatency(b *testing.B) {
	b.ReportAllocs()
	var saveUS, restoreUS float64
	for i := 0; i < b.N; i++ {
		r, err := CtxLatency()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Medium == "SGX DRAM (ODRIPS)" {
				saveUS = row.Save.Microseconds()
				restoreUS = row.Restore.Microseconds()
			}
		}
	}
	b.ReportMetric(saveUS, "ctx_save_us")
	b.ReportMetric(restoreUS, "ctx_restore_us")
}

func BenchmarkModelValidation(b *testing.B) {
	b.ReportAllocs()
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := ModelValidation()
		if err != nil {
			b.Fatal(err)
		}
		worst = r.WorstAccPct
	}
	b.ReportMetric(worst, "model_accuracy_%")
}

func BenchmarkAblationMEECache(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AblationMEECache(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTimerAlternatives(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AblationTimerAlternatives(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIOGate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AblationIOGate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReinitSensitivity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AblationReinitSensitivity(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWakeCoalescing(b *testing.B) {
	b.ReportAllocs()
	var bigBufferMW float64
	for i := 0; i < b.N; i++ {
		r, err := WakeCoalescing()
		if err != nil {
			b.Fatal(err)
		}
		bigBufferMW = r.Rows[4].AvgMW
	}
	b.ReportMetric(bigBufferMW, "256KiB_buffer_mW")
}

func BenchmarkProcessScaling(b *testing.B) {
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := ProcessScaling()
		if err != nil {
			b.Fatal(err)
		}
		acc = r.AccuracyPct
	}
	b.ReportMetric(acc, "projection_accuracy_%")
}

func BenchmarkWakeLatency(b *testing.B) {
	b.ReportAllocs()
	var deltaUS float64
	for i := 0; i < b.N; i++ {
		r, err := WakeLatency()
		if err != nil {
			b.Fatal(err)
		}
		deltaUS = r.DeltaMean.Microseconds()
	}
	b.ReportMetric(deltaUS, "exit_delta_us")
}

func BenchmarkTDPSensitivity(b *testing.B) {
	b.ReportAllocs()
	var lowTDP float64
	for i := 0; i < b.N; i++ {
		r, err := TDPSensitivity()
		if err != nil {
			b.Fatal(err)
		}
		lowTDP = r.Rows[0].ReductionPct
	}
	b.ReportMetric(lowTDP, "4.5W_reduction_%")
}

func BenchmarkCalibrationAging(b *testing.B) {
	b.ReportAllocs()
	var stale2ppm float64
	for i := 0; i < b.N; i++ {
		r, err := CalibrationAging()
		if err != nil {
			b.Fatal(err)
		}
		stale2ppm = r.Rows[2].StaleDriftPPB
	}
	b.ReportMetric(stale2ppm, "stale_2ppm_drift_ppb")
}

func BenchmarkTransitionAnatomy(b *testing.B) {
	b.ReportAllocs()
	var deltaUJ float64
	for i := 0; i < b.N; i++ {
		base, err := TransitionAnatomy(0)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := TransitionAnatomy(ODRIPS)
		if err != nil {
			b.Fatal(err)
		}
		deltaUJ = (opt.EntryTotalUJ + opt.ExitTotalUJ) - (base.EntryTotalUJ + base.ExitTotalUJ)
	}
	b.ReportMetric(deltaUJ, "transition_delta_uJ")
}

func BenchmarkStandbyComparison(b *testing.B) {
	b.ReportAllocs()
	var s3mW float64
	for i := 0; i < b.N; i++ {
		r, err := Standby()
		if err != nil {
			b.Fatal(err)
		}
		s3mW = r.Rows[2].FloorMW
	}
	b.ReportMetric(s3mW, "S3_floor_mW")
}

// BenchmarkSchedulerChurn exercises the scheduler hot path the platform
// model leans on: schedule two events, cancel one, fire the other. The
// free-list event pool keeps this at zero allocations per operation.
func BenchmarkSchedulerChurn(b *testing.B) {
	b.ReportAllocs()
	s := sim.NewScheduler()
	nop := func() {}
	for i := 0; i < b.N; i++ {
		keep := s.After(sim.Duration(1), "keep", nop)
		drop := s.After(sim.Duration(2), "drop", nop)
		s.Cancel(drop)
		s.Step()
		_ = keep
	}
}

// BenchmarkConnectedStandbySixHours measures simulator throughput on a
// long realistic workload: six hours of connected standby (~720 cycles,
// every context save/restore running real MEE crypto).
func BenchmarkConnectedStandbySixHours(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := NewPlatform(ODRIPSConfig())
		if err != nil {
			b.Fatal(err)
		}
		res, err := p.RunCycles(ConnectedStandby(720, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgPowerMW, "avg_mW")
		b.ReportMetric(res.Duration.Seconds(), "simulated_s")
	}
}

// BenchmarkConnectedStandbySixHoursWarm is the six-hour run replayed
// from a populated persistent memo store with a fixed seed: each
// iteration drops the in-process bundle cache, so the measured cost is
// the bundle decode, the per-boundary fingerprints, and the replay
// arithmetic — the post-memo residue — not simulation.
func BenchmarkConnectedStandbySixHoursWarm(b *testing.B) {
	b.ReportAllocs()
	withWarmMemoStore(b)
	run := func() Result {
		ResetPersistentMemos() // warm = disk, not RAM
		p, err := NewPlatform(ODRIPSConfig())
		if err != nil {
			b.Fatal(err)
		}
		res, err := p.RunCycles(ConnectedStandby(720, 1))
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	run() // populate the store (cold, untimed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := run()
		b.ReportMetric(res.AvgPowerMW, "avg_mW")
		b.ReportMetric(res.Duration.Seconds(), "simulated_s")
	}
}

// fleet10kSpec is the acceptance-scenario fleet: 10,000 devices over a
// six-hour horizon whose spread (seeds, battery capacities) is
// homogeneous in simulation physics, so the engine collapses it to a
// couple of simulated runs plus result patching.
func fleet10kSpec() FleetSpec {
	return FleetSpec{
		Name:    "bench10k",
		Devices: 10000,
		Shards:  16,
		Spread: FleetSpread{
			SeedStride: 3,
			BatteryMWh: []float64{36000, 30000, 28000},
		},
	}
}

// BenchmarkFleet10k measures a cold 10,000-device fleet job end to end:
// expansion, two simulated runs (plane warm-up and the frozen-snapshot
// replay), 10,000 per-device battery patches, and aggregation. Compare
// against 10,000× BenchmarkConnectedStandbySixHours for the sequential
// cost it replaces.
func BenchmarkFleet10k(b *testing.B) {
	b.ReportAllocs()
	spec := fleet10kSpec()
	for i := 0; i < b.N; i++ {
		rep, err := FleetOnPlane(spec, nil) // nil: fresh plane, fully cold
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Memo.CrossDeviceHitRatePct, "hit_pct")
		b.ReportMetric(float64(rep.Aggregates.TotalDeviceCycles), "device_cycles")
	}
}

// BenchmarkFleet10kWarm is the same fleet replayed from a populated
// persistent memo store: each iteration builds a fresh plane over the
// store, so the measured cost is the disk adopt plus replay — no cycle
// is ever recorded twice across iterations.
func BenchmarkFleet10kWarm(b *testing.B) {
	b.ReportAllocs()
	withWarmMemoStore(b)
	spec := fleet10kSpec()
	run := func() *FleetReport {
		rep, err := Fleet(spec) // plane over the process store
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	run() // populate the store (cold, untimed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := run()
		b.ReportMetric(rep.Memo.CrossDeviceHitRatePct, "hit_pct")
		b.ReportMetric(float64(rep.Memo.Store.Hits), "store_hits")
	}
}

// BenchmarkFleet10kWarmPacked is BenchmarkFleet10kWarm after compaction:
// the populate run's loose entries are folded into a single checksummed
// pack segment, so each iteration's disk adopt is one segment read plus
// a once-per-open index instead of a file open per memo entry.
func BenchmarkFleet10kWarmPacked(b *testing.B) {
	b.ReportAllocs()
	withWarmMemoStore(b)
	spec := fleet10kSpec()
	run := func() *FleetReport {
		rep, err := Fleet(spec) // plane over the process store
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	run() // populate the store (cold, untimed)
	if cs, err := CompactMemoCache(); err != nil || cs.Entries == 0 {
		b.Fatalf("compact: %+v %v", cs, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := run()
		if rep.Memo.Store.PackHits == 0 {
			b.Fatalf("warm run took no pack hits: %+v", rep.Memo.Store)
		}
		b.ReportMetric(rep.Memo.CrossDeviceHitRatePct, "hit_pct")
		b.ReportMetric(float64(rep.Memo.Store.PackHits), "pack_hits")
	}
}
