package odrips

import (
	"math"
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade the way the examples do.
func TestPublicAPIEndToEnd(t *testing.T) {
	base, err := NewPlatform(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.RunCycles(FixedCycles(2, 0, 30*Second))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewPlatform(ODRIPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := opt.RunCycles(FixedCycles(2, 0, 30*Second))
	if err != nil {
		t.Fatal(err)
	}
	red := 100 * (baseRes.AvgPowerMW - optRes.AvgPowerMW) / baseRes.AvgPowerMW
	if math.Abs(red-22) > 1.5 {
		t.Fatalf("ODRIPS reduction via public API = %.1f%%, want ~22%%", red)
	}
	be, err := BreakEven(baseRes.CycleEnergy, optRes.CycleEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if ms := be.Milliseconds(); ms < 5.5 || ms > 7.5 {
		t.Fatalf("break-even = %.2f ms, want ~6.5", ms)
	}
}

func TestPublicWorkloadGenerators(t *testing.T) {
	cs := ConnectedStandby(5, 1)
	if len(cs) != 5 {
		t.Fatal("ConnectedStandby wrong length")
	}
	p, err := NewPlatform(ODRIPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Mixed realistic workload must run clean through the facade.
	res, err := p.RunCycles(cs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 5 || res.AvgPowerMW <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestPublicTableRenders(t *testing.T) {
	if s := Table1().String(); len(s) < 100 {
		t.Fatal("Table1 render too short")
	}
}
