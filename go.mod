module odrips

go 1.22
