GO      ?= go
PKGS    := ./...
STAMP   := $(shell date -u +%Y%m%dT%H%M%SZ)

.PHONY: all build test vet race verify bench bench-sweep clean

all: build test

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

vet:
	$(GO) vet $(PKGS)

race:
	$(GO) test -race $(PKGS)

# The CI verify tier: static analysis plus the full suite under the race
# detector (the parallel sweep engine is exercised by every experiment test).
verify: vet race

# Record the full benchmark suite (with allocation stats) to a timestamped
# JSON artifact for before/after comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json $(PKGS) | tee BENCH_$(STAMP).json

# Just the heavyweight sweep benchmark, one iteration.
bench-sweep:
	$(GO) test -run '^$$' -bench 'BenchmarkFig6aSweep|BenchmarkSchedulerChurn' -benchmem -benchtime 1x .

clean:
	rm -f BENCH_*.json
