GO       ?= go
PKGS     := ./...
STAMP    := $(shell date -u +%Y%m%dT%H%M%SZ)
FUZZTIME ?= 60s

.PHONY: all build test vet lint race verify fuzz bench bench-smoke bench-sweep benchdiff clean

all: build test

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

vet:
	$(GO) vet $(PKGS)

# The repo-specific determinism/units lint suite (internal/analysis): seeded
# randomness only, fixed-point Float() confined to diagnostics, no
# order-sensitive map iteration, no lock copies or stale sim.Event caches.
lint:
	$(GO) run ./cmd/odrips-vet $(PKGS)

race:
	$(GO) test -race $(PKGS)

# The CI verify tier: build, go vet, odrips-vet, then the full suite under
# the race detector (the parallel sweep engine is exercised by every
# experiment test). Mirrored by .github/workflows/ci.yml.
verify: build vet lint race

# Long-run every fuzz target for FUZZTIME each (go only allows one -fuzz
# pattern per package invocation). Run nightly by
# .github/workflows/nightly-fuzz.yml; set FUZZTIME=5s for a local smoke.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzImportState$$' -fuzztime $(FUZZTIME) ./internal/mee
	$(GO) test -run '^$$' -fuzz '^FuzzReadAfterCorruption$$' -fuzztime $(FUZZTIME) ./internal/mee
	$(GO) test -run '^$$' -fuzz '^FuzzReadInPlaceDifferential$$' -fuzztime $(FUZZTIME) ./internal/mee
	$(GO) test -run '^$$' -fuzz '^FuzzDeserialize$$' -fuzztime $(FUZZTIME) ./internal/ctxstore
	$(GO) test -run '^$$' -fuzz '^FuzzUnpackBootImage$$' -fuzztime $(FUZZTIME) ./internal/ctxstore
	$(GO) test -run '^$$' -fuzz '^FuzzFaultPlan$$' -fuzztime $(FUZZTIME) ./internal/faults

# Record the full benchmark suite (with allocation stats) to a timestamped
# JSON artifact for before/after comparison. Written to a temp file and
# renamed on success, so a failed run cannot leave a half-written artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json $(PKGS) > BENCH_$(STAMP).json.tmp || { rm -f BENCH_$(STAMP).json.tmp; exit 1; }
	mv BENCH_$(STAMP).json.tmp BENCH_$(STAMP).json
	@echo wrote BENCH_$(STAMP).json

# One iteration of every benchmark: catches bit-rot (compile errors, setup
# panics) without paying for stable timings. Run by CI on every push.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x $(PKGS)

# Just the heavyweight sweep benchmark, one iteration.
bench-sweep:
	$(GO) test -run '^$$' -bench 'BenchmarkFig6aSweep|BenchmarkSchedulerChurn' -benchmem -benchtime 1x .

# Compare two bench artifacts: make benchdiff OLD=BENCH_a.json NEW=BENCH_b.json
# Fails on >10% ns/op growth or any allocs/op growth.
benchdiff:
	$(GO) run ./cmd/odrips-benchdiff $(OLD) $(NEW)

clean:
	rm -f BENCH_*.json BENCH_*.json.tmp
