GO       ?= go
PKGS     := ./...
STAMP    := $(shell date -u +%Y%m%dT%H%M%SZ)
FUZZTIME ?= 60s

.PHONY: all build test vet lint lint-fixtures race verify fleet-smoke server-smoke fuzz bench bench-smoke bench-sweep bench-baseline-1x bench-gate bench-warm memo-compact benchdiff profile profile-diff clean

all: build test

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

vet:
	$(GO) vet $(PKGS)

# The repo-specific determinism/units/concurrency lint suite
# (internal/analysis): seeded randomness only, fixed-point Float() confined
# to diagnostics, no order-sensitive map iteration, no lock copies or stale
# sim.Event caches, no loose package-level state, joined goroutines,
# handled fail-safe load errors, pinned codec schema hashes, and a
# vet-time-exhaustive fingerprint manifest.
lint:
	$(GO) run ./cmd/odrips-vet $(PKGS)

# The lint suite's own fixture tests: every rule's must-flag/must-pass
# corpus under testdata/src, plus the directive machinery. Fast feedback
# when hacking on internal/analysis without running the whole test tier.
lint-fixtures:
	$(GO) test -run 'TestFixtures|TestDirectiveFindings|TestMustFlagFixturesFailTheBuild' ./internal/analysis

race:
	$(GO) test -race $(PKGS)

# The CI verify tier: build, go vet, odrips-vet, then the full suite under
# the race detector (the parallel sweep engine is exercised by every
# experiment test). Mirrored by .github/workflows/ci.yml.
verify: build vet lint race

# Fleet smoke tier: the fleet engine's full test suite under the race
# detector with the load harness raised to thousands of concurrent jobs
# against the shared memo plane, then a cold+warm 1000-device fleet
# through the CLI against a persistent store (the warm run must adopt
# from disk). Run by CI on every push; FLEET_LOAD_JOBS scales the
# harness.
FLEET_LOAD_JOBS ?= 2048
FLEETDIR := $(CURDIR)/.odrips-fleet-smoke
fleet-smoke:
	ODRIPS_FLEET_LOAD_JOBS=$(FLEET_LOAD_JOBS) $(GO) test -race -count=1 ./internal/fleet ./internal/platform -run 'TestFleet|TestMemoPlane|TestMemoSnapshot'
	rm -rf $(FLEETDIR)
	$(GO) run ./cmd/odrips-fleet -devices 1000 -shards 8 -memocache rw -memocachedir $(FLEETDIR) > /dev/null
	$(GO) run ./cmd/odrips-fleet -devices 1000 -shards 8 -memocache ro -memocachedir $(FLEETDIR) -format json | grep -q '"adopted": [1-9]' || { echo "fleet-smoke: warm run adopted nothing from the memo store"; exit 1; }
	@rm -rf $(FLEETDIR)
	@echo fleet-smoke OK

# Server smoke tier: build odrips-server and odrips-loadgen, bring TWO
# servers up on ephemeral ports over one shared persistent memo store,
# replay SERVER_SMOKE_JOBS bursty submissions round-robined across both
# (zero drops, monotone progress, per-class byte-identical aggregates
# regardless of which server ran the job — loadgen exits nonzero on any
# violation), then SIGTERM both and require clean drains (exit 0). The
# shared store exercises the cross-process claim protocol under real
# process isolation. Run by CI on every push.
SMOKEDIR          := $(CURDIR)/.odrips-server-smoke
SERVER_SMOKE_JOBS ?= 200
server-smoke:
	rm -rf $(SMOKEDIR) && mkdir -p $(SMOKEDIR)/store
	$(GO) build -o $(SMOKEDIR)/ ./cmd/odrips-server ./cmd/odrips-loadgen
	$(SMOKEDIR)/odrips-server -addr 127.0.0.1:0 -workers 4 -memocache rw -memocachedir $(SMOKEDIR)/store > $(SMOKEDIR)/server1.log 2>&1 & \
	pid1=$$!; \
	$(SMOKEDIR)/odrips-server -addr 127.0.0.1:0 -workers 4 -memocache rw -memocachedir $(SMOKEDIR)/store > $(SMOKEDIR)/server2.log 2>&1 & \
	pid2=$$!; \
	for i in $$(seq 1 100); do grep -q 'listening on' $(SMOKEDIR)/server1.log 2>/dev/null && grep -q 'listening on' $(SMOKEDIR)/server2.log 2>/dev/null && break; sleep 0.1; done; \
	addr1=$$(sed -n 's/.*listening on //p' $(SMOKEDIR)/server1.log | head -1); \
	addr2=$$(sed -n 's/.*listening on //p' $(SMOKEDIR)/server2.log | head -1); \
	if [ -z "$$addr1" ] || [ -z "$$addr2" ]; then echo "server-smoke: a server never came up"; cat $(SMOKEDIR)/server1.log $(SMOKEDIR)/server2.log; kill $$pid1 $$pid2 2>/dev/null; exit 1; fi; \
	$(SMOKEDIR)/odrips-loadgen -addr "http://$$addr1,http://$$addr2" -jobs $(SERVER_SMOKE_JOBS) -burst -concurrency 32 || { kill $$pid1 $$pid2 2>/dev/null; exit 1; }; \
	kill -TERM $$pid1 $$pid2; \
	wait $$pid1 || { echo "server-smoke: server 1 exited nonzero after SIGTERM"; cat $(SMOKEDIR)/server1.log; kill $$pid2 2>/dev/null; exit 1; }; \
	wait $$pid2 || { echo "server-smoke: server 2 exited nonzero after SIGTERM"; cat $(SMOKEDIR)/server2.log; exit 1; }
	@rm -rf $(SMOKEDIR)
	@echo server-smoke OK

# Long-run every fuzz target for FUZZTIME each (go only allows one -fuzz
# pattern per package invocation). Run nightly by
# .github/workflows/nightly-fuzz.yml; set FUZZTIME=5s for a local smoke.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzImportState$$' -fuzztime $(FUZZTIME) ./internal/mee
	$(GO) test -run '^$$' -fuzz '^FuzzReadAfterCorruption$$' -fuzztime $(FUZZTIME) ./internal/mee
	$(GO) test -run '^$$' -fuzz '^FuzzReadInPlaceDifferential$$' -fuzztime $(FUZZTIME) ./internal/mee
	$(GO) test -run '^$$' -fuzz '^FuzzDeserialize$$' -fuzztime $(FUZZTIME) ./internal/ctxstore
	$(GO) test -run '^$$' -fuzz '^FuzzUnpackBootImage$$' -fuzztime $(FUZZTIME) ./internal/ctxstore
	$(GO) test -run '^$$' -fuzz '^FuzzFaultPlan$$' -fuzztime $(FUZZTIME) ./internal/faults
	$(GO) test -run '^$$' -fuzz '^FuzzMemoStoreLoad$$' -fuzztime $(FUZZTIME) ./internal/memostore
	$(GO) test -run '^$$' -fuzz '^FuzzPackLoad$$' -fuzztime $(FUZZTIME) ./internal/memostore
	$(GO) test -run '^$$' -fuzz '^FuzzJobSpec$$' -fuzztime $(FUZZTIME) ./internal/fleet

# Record the full benchmark suite (with allocation stats) to a timestamped
# JSON artifact for before/after comparison. Written to a temp file and
# renamed on success, so a failed run cannot leave a half-written artifact.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json $(PKGS) > BENCH_$(STAMP).json.tmp || { rm -f BENCH_$(STAMP).json.tmp; exit 1; }
	mv BENCH_$(STAMP).json.tmp BENCH_$(STAMP).json
	@echo wrote BENCH_$(STAMP).json

# One iteration of every benchmark: catches bit-rot (compile errors, setup
# panics) without paying for stable timings. Run by CI on every push.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x $(PKGS)

# The committed single-iteration baseline the CI regression gate diffs
# against. It must be recorded at -benchtime 1x like the gate run itself:
# one iteration pays setup and memo-warmup costs that longer runs amortize
# away, so 1x numbers only compare against 1x numbers. GOMAXPROCS is
# pinned for both because the parallel sweep pools size themselves off the
# core count, and with them the allocation counts. Refresh with
# `make bench-baseline-1x` and commit the artifact.
BASELINE_1X ?= BENCH_baseline_1x.json
GATEPROCS   := 4

bench-baseline-1x:
	GOMAXPROCS=$(GATEPROCS) $(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json $(PKGS) > $(BASELINE_1X).tmp || { rm -f $(BASELINE_1X).tmp; exit 1; }
	mv $(BASELINE_1X).tmp $(BASELINE_1X)
	@echo wrote $(BASELINE_1X)

# CI regression gate: record a one-iteration artifact and diff it against
# the committed 1x baseline. A single iteration is not steady state — its
# timing is mostly jitter and its alloc count includes one-time warmup
# (goroutine stack growth in worker pools, lazy tables) that varies by a
# few allocations run to run — so both gates are tripwires for gross
# regressions, not the contract: time +100% and +100ms (a fast-forward
# engine that stopped engaging), allocs +1% and +8 (a per-cycle or
# per-block allocation leak multiplies across a run's cycles, clearing
# the floor easily). The zero-allocation datapath contract itself is
# enforced by the tight zero-slack default gate of `make benchdiff`
# between two full `make bench` artifacts.
bench-gate:
	GOMAXPROCS=$(GATEPROCS) $(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json $(PKGS) > BENCH_ci.json.tmp || { rm -f BENCH_ci.json.tmp; exit 1; }
	$(GO) run ./cmd/odrips-benchdiff -ns-tolerance 1.0 -ns-floor 1e8 -allocs-slack 0.01 -allocs-floor 8 $(BENCHDIFF_FLAGS) $(BASELINE_1X) BENCH_ci.json.tmp
	@rm -f BENCH_ci.json.tmp

# Just the heavyweight sweep benchmark, one iteration.
bench-sweep:
	$(GO) test -run '^$$' -bench 'BenchmarkFig6aSweep|BenchmarkSchedulerChurn' -benchmem -benchtime 1x .

# Warm-cache tier: run the one-iteration gate suite twice against the same
# persistent memo store (env-activated, no flag plumbing) — the first run
# populates the store (cold), the second replays from it (warm) — then
# report cold vs warm side by side. Reporting only, never a gate: the
# tolerances are set so it cannot fail, and the markdown form feeds CI job
# summaries (BENCHDIFF_FLAGS=-markdown). At -benchtime 1x the suite is
# fully deterministic, so the warm run replays every persisted memo.
# MEMOKEEP=1 skips the initial wipe so a store restored from a CI cache
# survives — the "cold" run is then already warm, which is the point.
MEMODIR ?= $(CURDIR)/.odrips-memocache
bench-warm:
	$(if $(MEMOKEEP),,rm -rf $(MEMODIR))
	GOMAXPROCS=$(GATEPROCS) ODRIPS_MEMOCACHE=rw ODRIPS_MEMOCACHE_DIR=$(MEMODIR) $(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json $(PKGS) > BENCH_cold.json.tmp || { rm -f BENCH_cold.json.tmp; exit 1; }
	GOMAXPROCS=$(GATEPROCS) ODRIPS_MEMOCACHE=rw ODRIPS_MEMOCACHE_DIR=$(MEMODIR) $(GO) test -run '^$$' -bench . -benchmem -benchtime 1x -json $(PKGS) > BENCH_warm.json.tmp || { rm -f BENCH_warm.json.tmp BENCH_cold.json.tmp; exit 1; }
	$(GO) run ./cmd/odrips-benchdiff -ns-tolerance 1e9 -ns-floor 1e18 -allocs-slack 1e9 -allocs-floor 1e18 $(BENCHDIFF_FLAGS) BENCH_cold.json.tmp BENCH_warm.json.tmp
	@rm -f BENCH_cold.json.tmp BENCH_warm.json.tmp

# Compact the local persistent memo store: fold loose *.memo entries
# into a single checksummed pack segment (and drop corrupt leftovers),
# so the next warm run opens one file instead of thousands. Safe while
# other processes read the store — the new segment lands before any
# loose file is unlinked.
memo-compact:
	$(GO) run ./cmd/odrips-bench -exp none -memocompact -memocache rw -memocachedir $(MEMODIR)

# CPU and allocation profiles of a six-hour ODRIPS standby run; inspect
# with `go tool pprof cpu.pprof`. FF=off profiles the full simulation path,
# FF=on (default) profiles the memoized fast-forward path. PROF_PREFIX
# names the artifacts, so before/after pairs can coexist:
#
#	make profile PROF_PREFIX=pre_     # record the baseline
#	<apply the change>
#	make profile PROF_PREFIX=post_
#	go tool pprof -diff_base pre_cpu.pprof post_cpu.pprof
FF ?= on
PROF_PREFIX ?=
profile:
	$(GO) run ./cmd/odrips-sim -config odrips -cycles 720 -fastforward $(FF) -cpuprofile $(PROF_PREFIX)cpu.pprof -memprofile $(PROF_PREFIX)mem.pprof > /dev/null
	@echo wrote $(PROF_PREFIX)cpu.pprof $(PROF_PREFIX)mem.pprof

# Differential profile of the fast-forward engine itself: record the same
# run with the engine off and on, then print the delta (-diff_base), i.e.
# exactly what the memoized path still pays for — the post-memo residue.
profile-diff:
	$(GO) run ./cmd/odrips-sim -config odrips -cycles 720 -fastforward off -cpuprofile ffoff_cpu.pprof -memprofile ffoff_mem.pprof > /dev/null
	$(GO) run ./cmd/odrips-sim -config odrips -cycles 720 -fastforward on -cpuprofile ffon_cpu.pprof -memprofile ffon_mem.pprof > /dev/null
	$(GO) tool pprof -top -nodecount=25 -diff_base ffoff_cpu.pprof ffon_cpu.pprof
	@echo wrote ffoff_cpu.pprof ffon_cpu.pprof ffoff_mem.pprof ffon_mem.pprof
	@echo "inspect: $(GO) tool pprof -diff_base ffoff_cpu.pprof ffon_cpu.pprof"

# Compare two bench artifacts: make benchdiff OLD=BENCH_a.json NEW=BENCH_b.json
# Fails on >10% ns/op growth or any allocs/op growth.
benchdiff:
	$(GO) run ./cmd/odrips-benchdiff $(OLD) $(NEW)

clean:
	rm -f BENCH_*.json BENCH_*.json.tmp *.pprof
	rm -rf .odrips-memocache
