// Command odrips-vet runs the repository's determinism/units lint suite
// (internal/analysis) and reports findings as
//
//	file:line: [rule] message
//
// or, under -json, as one JSON object per line
//
//	{"file":"internal/sim/sim.go","line":42,"rule":"walltime","message":"..."}
//
// Exit codes are part of the contract CI scripts rely on: 0 with no
// findings, 1 when any finding survives, 2 when the tree cannot be loaded
// (parse or type error). The tool is stdlib-only by design — `make lint`
// must work on a bare toolchain — and is wired into `make verify` and CI
// (.github/odrips-vet-matcher.json turns the plain output into annotations).
//
// Usage:
//
//	odrips-vet [-list] [-json] [packages]
//
// where packages are directories or /... subtree patterns relative to the
// module root (default ./...).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"odrips/internal/analysis"
)

// jsonFinding is the -json wire form: one object per line, stable field
// names, so CI post-processors need no positional parsing.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the lint rules and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: odrips-vet [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-vet: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		// Relative paths keep output stable across checkouts and clickable
		// in editors.
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
				f.Pos.Filename = rel
			}
		}
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line,
				Rule: f.Rule, Message: f.Message,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "odrips-vet: %v\n", err)
				os.Exit(2)
			}
		} else {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "odrips-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
