// Command odrips-vet runs the repository's determinism/units lint suite
// (internal/analysis) and reports findings as
//
//	file:line: [rule] message
//
// exiting 1 when any finding survives, 2 when the tree cannot be loaded.
// It is stdlib-only by design — `make lint` must work on a bare toolchain —
// and is wired into `make verify` and CI.
//
// Usage:
//
//	odrips-vet [-list] [packages]
//
// where packages are directories or /... subtree patterns relative to the
// module root (default ./...).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"odrips/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the lint rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: odrips-vet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-vet: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		// Relative paths keep output stable across checkouts and clickable
		// in editors.
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "odrips-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
