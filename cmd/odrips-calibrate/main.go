// Command odrips-calibrate demonstrates the Step calibration of §4.1.3:
// it plans the fixed-point geometry for a crystal pair, runs the
// calibration with its real (simulated) 64-second window, and then measures
// the slow timer's drift against the fast clock over a long idle window.
//
// Usage:
//
//	odrips-calibrate
//	odrips-calibrate -fastppb 20000 -slowppb -35000 -window 10m
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"odrips/internal/clock"
	"odrips/internal/sim"
	"odrips/internal/timer"
)

func main() {
	fastPPB := flag.Int64("fastppb", 2_300, "24 MHz crystal frequency error (ppb)")
	slowPPB := flag.Int64("slowppb", -4_100, "32.768 kHz crystal frequency error (ppb)")
	window := flag.Duration("window", 5*time.Minute, "drift measurement window (simulated)")
	flag.Parse()

	s := sim.NewScheduler()
	fast := clock.NewOscillator(s, "xtal24", 24_000_000, *fastPPB, 0)
	slow := clock.NewOscillator(s, "xtal32", 32_768, *slowPPB, 0)
	fast.PowerOn()
	slow.PowerOn()

	m, f, nSlow := timer.PlanCalibration(fast.NominalHz(), slow.NominalHz())
	fmt.Printf("clock pair:        %.6f MHz / %.6f kHz\n", fast.ActualHz()/1e6, slow.ActualHz()/1e3)
	fmt.Printf("planned geometry:  m=%d integer bits, f=%d fractional bits (paper: 10, 21)\n", m, f)
	fmt.Printf("calibration window: N_slow = 2^%d = %d slow cycles\n", f, nSlow)

	// Run the calibration with its real latency.
	cal := timer.NewCalibrator(s, fast, slow)
	var result timer.CalibrationResult
	if err := cal.Start(func(r timer.CalibrationResult) { result = r }); err != nil {
		fmt.Fprintf(os.Stderr, "odrips-calibrate: %v\n", err)
		os.Exit(1)
	}
	s.Run()
	fmt.Printf("window wall time:  %v (runs once per platform reset)\n", result.Window)
	fmt.Printf("counted N_fast:    %d\n", result.NFast)
	fmt.Printf("Step:              %.9f (%s)\n", result.Step.Float(), result.Step)
	fmt.Printf("quantization drift bound: %.3f ppb (target 1 ppb)\n", result.DriftPPB())

	// Drift measurement: run a slow counter against the live fast clock.
	dom := clock.NewDomain("fast", fast)
	ref := timer.NewFastCounter(s, "ref", dom)
	sc := timer.NewSlowCounter(s, "slow", slow, result.Step)
	_, t0, ok := slow.NextEdge(s.Now())
	if !ok {
		fmt.Fprintln(os.Stderr, "odrips-calibrate: no slow edge")
		os.Exit(1)
	}
	s.At(t0, "start", func() {
		if err := ref.Set(0); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-calibrate: %v\n", err)
			os.Exit(1)
		}
		if err := sc.Load(0); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-calibrate: %v\n", err)
			os.Exit(1)
		}
	})
	end := t0.Add(sim.FromSeconds(window.Seconds()))
	var maxErr float64
	samples := 0
	step := sim.FromSeconds(window.Seconds() / 32)
	for at := t0.Add(step); !at.After(end); at = at.Add(step) {
		s.At(at, "sample", func() {
			e := math.Abs(float64(sc.Read()) - float64(ref.Read()))
			if e > maxErr {
				maxErr = e
			}
			samples++
		})
	}
	s.Run()
	fastCycles := window.Seconds() * fast.ActualHz()
	fmt.Printf("drift check:       %d samples over %v\n", samples, *window)
	fmt.Printf("max |slow - fast|: %.0f counts (%.3f ppb of %.2e fast cycles;\n",
		maxErr, maxErr/fastCycles*1e9, fastCycles)
	fmt.Printf("                   includes up to one Step of inter-edge sampling lag)\n")
}
