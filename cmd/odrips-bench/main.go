// Command odrips-bench regenerates every table and figure of the paper's
// evaluation section and prints them as plain-text reports.
//
// Usage:
//
//	odrips-bench                 # everything, analytic break-evens only
//	odrips-bench -exp fig6a      # one experiment
//	odrips-bench -sweep fast     # add the empirical residency sweep
//	odrips-bench -sweep paper    # full 0.6 ms–1 s @0.1 ms grid (slow)
//	odrips-bench -workers 8      # cap the simulation worker pool
//
// Independent simulation points fan out across a worker pool sized by
// -workers (default: all cores). Results are deterministic: any worker
// count, including -workers 1, produces identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"odrips"
	"odrips/internal/prof"
)

func main() {
	expFlag := flag.String("exp", "all",
		"comma-separated experiments: table1,fig1b,fig2,fig3b,calibration,fig6a,fig6b,fig6c,fig6d,ctxlatency,validation,ablations,coalescing,scaling,standby,anatomy,aging,tdp,wakelatency,faultsweep,fleet (faultsweep and fleet are opt-in: not part of \"all\"; \"none\" selects nothing, for store maintenance runs)")
	sweepFlag := flag.String("sweep", "none", "break-even sweep: none, fast, or paper")
	memoStats := flag.Bool("memostats", false, "print memo-layer statistics (point caches, persistent store) after the selected experiments")
	memoCompact := flag.Bool("memocompact", false, "after the selected experiments, fold the persistent memo store's loose entries into a pack segment (requires -memocache rw)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = all cores, 1 = sequential)")
	ffFlag := flag.String("fastforward", "on", "steady-state fast-forward: on, off, or verify (output is byte-identical across all three)")
	memoFlag := flag.String("memocache", "", "persistent memo store: off, rw, ro, or verify (default: inherit ODRIPS_MEMOCACHE, normally off; output is byte-identical across all modes)")
	memoDir := flag.String("memocachedir", "", "persistent memo store directory (default .odrips-memocache)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memProfile := flag.String("memprofile", "", "write an allocation profile to `file`")
	flag.Parse()

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "odrips-bench: negative worker count %d\n", *workers)
		os.Exit(2)
	}
	odrips.SetDefaultWorkers(*workers)
	ffMode, err := odrips.ParseFFMode(*ffFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-bench: %v\n", err)
		os.Exit(2)
	}
	odrips.SetDefaultFastForward(ffMode)
	if *memoFlag != "" || *memoDir != "" {
		if err := odrips.SetupMemoCache(*memoFlag, *memoDir); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-bench: -memocache: %v\n", err)
			os.Exit(2)
		}
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-bench: %v\n", err)
		os.Exit(2)
	}

	var sweep odrips.SweepOptions
	switch *sweepFlag {
	case "none":
	case "fast":
		sweep = odrips.DefaultSweep()
	case "paper":
		sweep = odrips.PaperSweepGrid()
	default:
		fmt.Fprintf(os.Stderr, "odrips-bench: unknown sweep mode %q\n", *sweepFlag)
		os.Exit(2)
	}
	sweep.Workers = *workers

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	// Opt-in experiments run only when named explicitly; "all" keeps its
	// historical (byte-identical) output.
	optIn := map[string]bool{"faultsweep": true, "fleet": true}
	selected := func(name string) bool { return (all && !optIn[name]) || want[name] }

	type experiment struct {
		name string
		run  func() error
	}
	experiments := []experiment{
		{"table1", func() error {
			odrips.Table1().Render(os.Stdout)
			return nil
		}},
		{"fig1b", func() error {
			r, err := odrips.Fig1b()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"fig2", func() error {
			r, err := odrips.Fig2()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"fig3b", func() error {
			r, err := odrips.Fig3b()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"calibration", func() error {
			r, err := odrips.Calibration()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"fig6a", func() error {
			r, err := odrips.Fig6a(sweep)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			r.Chart().Render(os.Stdout)
			return nil
		}},
		{"fig6b", func() error {
			r, err := odrips.Fig6b()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"fig6c", func() error {
			r, err := odrips.Fig6c()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"fig6d", func() error {
			r, err := odrips.Fig6d(sweep)
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"ctxlatency", func() error {
			r, err := odrips.CtxLatency()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"validation", func() error {
			r, err := odrips.ModelValidation()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"ablations", func() error {
			mc, err := odrips.AblationMEECache()
			if err != nil {
				return err
			}
			mc.Table().Render(os.Stdout)
			ta, err := odrips.AblationTimerAlternatives()
			if err != nil {
				return err
			}
			ta.Table().Render(os.Stdout)
			gg, err := odrips.AblationIOGate()
			if err != nil {
				return err
			}
			gg.Table().Render(os.Stdout)
			rs, err := odrips.AblationReinitSensitivity()
			if err != nil {
				return err
			}
			rs.Table().Render(os.Stdout)
			return nil
		}},
		{"coalescing", func() error {
			r, err := odrips.WakeCoalescing()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"scaling", func() error {
			r, err := odrips.ProcessScaling()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"standby", func() error {
			r, err := odrips.Standby()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"wakelatency", func() error {
			r, err := odrips.WakeLatency()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"tdp", func() error {
			r, err := odrips.TDPSensitivity()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"aging", func() error {
			r, err := odrips.CalibrationAging()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"faultsweep", func() error {
			r, err := odrips.FaultSweep()
			if err != nil {
				return err
			}
			r.Table().Render(os.Stdout)
			return nil
		}},
		{"fleet", func() error {
			// A representative heterogeneous fleet: two drift populations,
			// two battery capacities, jittered wake periods, one faulted
			// device — small enough for the bench tier, structured enough
			// to exercise every collapse layer.
			rep, err := odrips.Fleet(odrips.FleetSpec{
				Name:    "bench",
				Devices: 1000,
				Horizon: odrips.Duration(3600) * odrips.Second,
				Shards:  8,
				Spread: odrips.FleetSpread{
					DriftPPB:    []int64{0, 40},
					BatteryMWh:  []float64{36000, 30000},
					JitterSteps: []odrips.Duration{0, 250 * odrips.Millisecond},
					Faults:      []odrips.FleetDeviceFaults{{Device: 5, Plan: "wake@1.3"}},
				},
			})
			if err != nil {
				return err
			}
			for _, t := range rep.Tables() {
				t.Render(os.Stdout)
			}
			return nil
		}},
		{"anatomy", func() error {
			for _, tc := range []struct {
				name string
				tech odrips.Technique
			}{{"Baseline", 0}, {"ODRIPS", odrips.ODRIPS}} {
				r, err := odrips.TransitionAnatomy(tc.tech)
				if err != nil {
					return err
				}
				r.Table(tc.name).Render(os.Stdout)
			}
			return nil
		}},
	}

	known := map[string]bool{"all": true, "none": true}
	for _, e := range experiments {
		known[e.name] = true
	}
	// Sorted so the experiment reported on a multi-typo invocation is the
	// same every run (map iteration order is randomized).
	requested := make([]string, 0, len(want))
	for name := range want {
		requested = append(requested, name)
	}
	sort.Strings(requested)
	for _, name := range requested {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "odrips-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	ran := 0
	for _, e := range experiments {
		if !selected(e.name) {
			continue
		}
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 && !*memoCompact {
		fmt.Fprintln(os.Stderr, "odrips-bench: nothing selected")
		os.Exit(2)
	}
	if *memoCompact {
		cs, err := odrips.CompactMemoCache()
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrips-bench: -memocompact: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("memo store compacted: %d entries in %s (%d B): merged %d loose + %d segments, removed %d loose, %d segments, %d corrupt\n",
			cs.Entries, cs.Segment, cs.SegmentBytes, cs.LooseMerged, cs.SegmentsMerged,
			cs.LooseRemoved, cs.SegmentsRemoved, cs.CorruptRemoved)
	}
	if *memoStats {
		odrips.MemoStats().Render(os.Stdout)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "odrips-bench: %v\n", err)
		os.Exit(1)
	}
}
