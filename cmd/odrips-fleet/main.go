// Command odrips-fleet runs a fleet-scale simulation: N perturbed device
// configurations against one shared cycle-memo plane, reported as
// battery-life percentiles, a residency histogram, wake statistics, and
// memo-plane effectiveness.
//
// Usage:
//
//	odrips-fleet -spec fleet.json            # spec file, text report
//	odrips-fleet -spec fleet.json -format json
//	odrips-fleet -devices 10000 -shards 16   # quick spec-less run
//	odrips-fleet -spec fleet.json -memocache rw  # persist memo classes
//
// The spec file is JSON with human-readable durations:
//
//	{
//	  "name": "nightly", "devices": 10000, "preset": "odrips",
//	  "horizon": "6h", "wake_period": "30s", "shards": 16,
//	  "spread": {
//	    "drift_ppb": [0, 40],
//	    "battery_mwh": [36000, 30000],
//	    "jitter_steps": ["0s", "250ms"],
//	    "faults": [{"device": 3, "plan": "wake@1.3"}]
//	  }
//	}
//
// The report's aggregates section is byte-identical at any -shards,
// -workers, and -fastforward setting; the memo section describes how
// the work was executed and legitimately varies with those knobs.
package main

import (
	"flag"
	"fmt"
	"os"

	"odrips"
)

func main() {
	specPath := flag.String("spec", "", "fleet spec file (JSON); omit to build a spec from the flags below")
	devices := flag.Int("devices", 0, "fleet size when no -spec file is given")
	preset := flag.String("preset", "", "base configuration preset: odrips, baseline, wake-up-off, aon-io-gate, ctx-sgx-dram")
	shards := flag.Int("shards", 0, "aggregation shard count (overrides the spec when > 0)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = all cores, 1 = sequential)")
	format := flag.String("format", "text", "report format: text, json, or markdown")
	outPath := flag.String("o", "", "write the report to `file` instead of stdout")
	ffFlag := flag.String("fastforward", "on", "steady-state fast-forward: on, off, or verify (aggregates are byte-identical across all three)")
	memoFlag := flag.String("memocache", "", "persistent memo store backing the plane: off, rw, ro, or verify")
	memoDir := flag.String("memocachedir", "", "persistent memo store directory (default .odrips-memocache)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "odrips-fleet: %v\n", err)
		os.Exit(2)
	}

	odrips.SetDefaultWorkers(*workers)
	ffMode, err := odrips.ParseFFMode(*ffFlag)
	if err != nil {
		fail(err)
	}
	odrips.SetDefaultFastForward(ffMode)
	if *memoFlag != "" || *memoDir != "" {
		if err := odrips.SetupMemoCache(*memoFlag, *memoDir); err != nil {
			fail(fmt.Errorf("-memocache: %w", err))
		}
	}

	var spec odrips.FleetSpec
	switch {
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fail(err)
		}
		if spec, err = odrips.ParseFleetSpec(data); err != nil {
			fail(err)
		}
	case *devices > 0:
		spec = odrips.FleetSpec{Name: "adhoc", Devices: *devices, Preset: *preset}
	default:
		fail(fmt.Errorf("need -spec <file> or -devices <n> (see -h)"))
	}
	if *shards > 0 {
		spec.Shards = *shards
	}
	if *workers > 0 {
		spec.Workers = *workers
	}

	rep, err := odrips.Fleet(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-fleet: %v\n", err)
		os.Exit(1)
	}

	var out []byte
	switch *format {
	case "text":
		out = []byte(rep.Text())
	case "json":
		b, err := rep.JSON()
		if err != nil {
			fail(err)
		}
		out = append(b, '\n')
	case "markdown":
		out = []byte(rep.Markdown())
	default:
		fail(fmt.Errorf("unknown format %q (want text, json, or markdown)", *format))
	}

	if *outPath == "" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fail(err)
	}
}
