// Command odrips-benchdiff compares two benchmark artifacts produced by
// `make bench` (`go test -bench -benchmem -json` streams) and flags
// performance regressions:
//
//	odrips-benchdiff OLD.json NEW.json
//
// A benchmark regresses when its ns/op grows by more than 10% or its
// allocs/op grows at all — the allocation counts are part of the
// zero-allocation datapath contract, so even a single new alloc per op is
// a hard failure. Exit status: 0 clean, 1 regressions found, 2 usage or
// parse errors. Stdlib-only by design, like the rest of the tooling.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// nsTolerance is the fractional ns/op growth tolerated before a benchmark
// counts as regressed; wall-time is noisy, allocation counts are not.
// nsFloorAbs additionally exempts sub-nanosecond-scale jitter: a handful of
// ns on a single-digit-ns benchmark is timer granularity, not a regression,
// so the absolute growth must clear the floor too.
//
// All are flags so CI can gate single-iteration artifacts with wider
// tolerances, while the tight zero-slack defaults serve local artifacts
// recorded with full `make bench` timings — the gate that enforces the
// zero-allocation datapath contract (any first alloc fails). Single
// iterations need the slack because they are not steady state: the
// wall-time is mostly timer granularity, and the alloc counts include
// one-time warmup (goroutine stack growth in worker pools, lazy tables)
// that jitters by a few allocations run to run.
var (
	nsTolerance = flag.Float64("ns-tolerance", 0.10,
		"fractional ns/op growth tolerated before flagging a time regression")
	nsFloorAbs = flag.Float64("ns-floor", 2.0,
		"absolute ns/op growth additionally required to flag a time regression")
	allocsSlack = flag.Float64("allocs-slack", 0,
		"fractional allocs/op growth tolerated (0 = any growth fails)")
	allocsFloor = flag.Float64("allocs-floor", 0,
		"absolute allocs/op growth additionally required to flag a regression")
	markdown = flag.Bool("markdown", false,
		"emit a GitHub-flavored-markdown summary table (for CI job summaries) instead of the fixed-width report")
)

type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// testEvent is the subset of the `go test -json` stream we consume.
type testEvent struct {
	Action  string
	Package string
	Output  string
}

// benchFull matches a one-line result: `BenchmarkName-8   123   456 ns/op …`.
var benchFull = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*ns/op.*)$`)

// benchName matches a bare benchmark name. The -json stream flushes the
// name and the numbers as separate output events whenever the benchmark
// emitted anything itself (b.ReportMetric, logging), so the parser has to
// stitch them back together.
var benchName = regexp.MustCompile(`^Benchmark\S+$`)

// benchValues matches a numbers-only continuation: `123   456 ns/op …`.
var benchValues = regexp.MustCompile(`^\d+\s+(.*ns/op.*)$`)

func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func parseValues(s string) result {
	var r result
	fields := strings.Fields(s)
	for i := 1; i < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch fields[i] {
		case "ns/op":
			r.nsPerOp = v
		case "allocs/op":
			r.allocsPerOp = v
			r.hasAllocs = true
		}
	}
	return r
}

// parseArtifact extracts benchmark results keyed by "package.BenchmarkName"
// (GOMAXPROCS suffix stripped, so artifacts from differently sized hosts
// still line up). The last run of a repeated benchmark wins.
func parseArtifact(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	pending := make(map[string]string) // package -> name awaiting its numbers
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if ev.Action != "output" {
			continue
		}
		line := strings.TrimSpace(ev.Output)
		switch {
		case benchFull.MatchString(line):
			m := benchFull.FindStringSubmatch(line)
			if r := parseValues(m[2]); r.nsPerOp > 0 {
				out[ev.Package+"."+stripProcs(m[1])] = r
			}
			delete(pending, ev.Package)
		case benchName.MatchString(line):
			pending[ev.Package] = stripProcs(line)
		case benchValues.MatchString(line):
			name, ok := pending[ev.Package]
			if !ok {
				continue
			}
			m := benchValues.FindStringSubmatch(line)
			if r := parseValues(m[1]); r.nsPerOp > 0 {
				out[ev.Package+"."+name] = r
			}
			delete(pending, ev.Package)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: odrips-benchdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRes, err := parseArtifact(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrips-benchdiff:", err)
		os.Exit(2)
	}
	newRes, err := parseArtifact(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrips-benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldRes))
	for n := range oldRes {
		names = append(names, n)
	}
	sort.Strings(names)

	// Comparison rows, shared by both renderers.
	type row struct {
		name           string
		oldNs, newNs   float64
		pct            float64
		allocs         string
		gone, added    bool
		timeR, allocsR bool
	}
	var rows []row
	var regressions []string
	for _, n := range names {
		o := oldRes[n]
		nw, ok := newRes[n]
		if !ok {
			rows = append(rows, row{name: n, oldNs: o.nsPerOp, gone: true})
			continue
		}
		r := row{name: n, oldNs: o.nsPerOp, newNs: nw.nsPerOp}
		r.pct = (nw.nsPerOp - o.nsPerOp) / o.nsPerOp * 100
		if o.hasAllocs || nw.hasAllocs {
			r.allocs = fmt.Sprintf("%.0f→%.0f", o.allocsPerOp, nw.allocsPerOp)
		}
		if nw.nsPerOp > o.nsPerOp*(1+*nsTolerance) && nw.nsPerOp-o.nsPerOp > *nsFloorAbs {
			r.timeR = true
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %+.1f%% (limit +%.0f%%)", n, r.pct, *nsTolerance*100))
		}
		if nw.allocsPerOp > o.allocsPerOp*(1+*allocsSlack) && nw.allocsPerOp-o.allocsPerOp > *allocsFloor {
			r.allocsR = true
			regressions = append(regressions, fmt.Sprintf("%s: allocs/op %.0f → %.0f", n, o.allocsPerOp, nw.allocsPerOp))
		}
		rows = append(rows, r)
	}
	addedNames := make([]string, 0)
	for n := range newRes {
		if _, ok := oldRes[n]; !ok {
			addedNames = append(addedNames, n)
		}
	}
	sort.Strings(addedNames)
	for _, n := range addedNames {
		rows = append(rows, row{name: n, newNs: newRes[n].nsPerOp, added: true})
	}

	okLine := fmt.Sprintf("no regressions (tolerance: ns/op +%.0f%% and +%.0fns, allocs/op +%.1f%% and +%.0f)",
		*nsTolerance*100, *nsFloorAbs, *allocsSlack*100, *allocsFloor)

	if *markdown {
		fmt.Println("| benchmark | old ns/op | new ns/op | Δ% | allocs/op | status |")
		fmt.Println("|---|---:|---:|---:|---:|---|")
		for _, r := range rows {
			switch {
			case r.gone:
				fmt.Printf("| `%s` | %.0f | _(gone)_ | | | |\n", r.name, r.oldNs)
			case r.added:
				fmt.Printf("| `%s` | _(new)_ | %.0f | | | |\n", r.name, r.newNs)
			default:
				status := "ok"
				if r.timeR {
					status = "**REGRESSED time**"
				}
				if r.allocsR {
					if r.timeR {
						status += " **+allocs**"
					} else {
						status = "**REGRESSED allocs**"
					}
				}
				fmt.Printf("| `%s` | %.0f | %.0f | %+.1f%% | %s | %s |\n",
					r.name, r.oldNs, r.newNs, r.pct, r.allocs, status)
			}
		}
		fmt.Println()
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Println("- :red_circle: REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Println(":white_check_mark:", okLine)
		return
	}

	fmt.Printf("%-60s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "Δ%", "allocs/op")
	for _, r := range rows {
		switch {
		case r.gone:
			fmt.Printf("%-60s %14.0f %14s\n", r.name, r.oldNs, "(gone)")
		case r.added:
			fmt.Printf("%-60s %14s %14.0f\n", r.name, "(new)", r.newNs)
		default:
			mark := ""
			if r.timeR {
				mark = "  REGRESSED time"
			}
			if r.allocsR {
				mark += "  REGRESSED allocs"
			}
			fmt.Printf("%-60s %14.0f %14.0f %7.1f%% %10s%s\n", r.name, r.oldNs, r.newNs, r.pct, r.allocs, mark)
		}
	}

	if len(regressions) > 0 {
		fmt.Println()
		for _, r := range regressions {
			fmt.Println("REGRESSION:", r)
		}
		os.Exit(1)
	}
	fmt.Printf("\n%s\n", okLine)
}
