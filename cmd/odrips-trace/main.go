// Command odrips-trace captures a sampled power trace of a connected-
// standby cycle with the modeled Keysight-style power analyzer (§7, Fig. 5)
// and writes it as CSV: one row per 50 us sample, one column per channel
// (battery, processor, DRAM, chipset).
//
// Usage:
//
//	odrips-trace -config odrips -idle 2s > trace.csv
//	odrips-trace -config baseline -interval 1ms -out trace.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"odrips"
	"odrips/internal/measure"
	"odrips/internal/sim"
)

func main() {
	name := flag.String("config", "odrips", "baseline or odrips")
	idle := flag.Duration("idle", 2*time.Second, "idle window of the traced cycle")
	interval := flag.Duration("interval", 50*time.Microsecond, "sampling interval")
	out := flag.String("out", "-", "output file (- for stdout)")
	flag.Parse()

	var cfg odrips.Config
	switch *name {
	case "baseline":
		cfg = odrips.DefaultConfig()
	case "odrips":
		cfg = odrips.ODRIPSConfig()
	default:
		fmt.Fprintf(os.Stderr, "odrips-trace: unknown config %q\n", *name)
		os.Exit(2)
	}
	cfg.ForceDeepest = true

	p, err := odrips.NewPlatform(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
		os.Exit(1)
	}

	meter := p.Meter()
	groupProbe := func(group string) func() float64 {
		return func() float64 {
			var mw float64
			for _, c := range meter.Components() {
				if c.Group() == group {
					if strings.HasPrefix(c.Name(), "vr.") {
						mw += c.DrawMW()
					} else {
						mw += c.DrawMW() / meter.Efficiency()
					}
				}
			}
			return mw
		}
	}
	analyzer, err := measure.NewAnalyzer(p.Scheduler(),
		measure.Channel{Name: "battery_mW", Probe: meter.BatteryPowerMW},
		measure.Channel{Name: "processor_mW", Probe: groupProbe("processor")},
		measure.Channel{Name: "dram_mW", Probe: groupProbe("dram")},
		measure.Channel{Name: "chipset_mW", Probe: groupProbe("chipset")},
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
		os.Exit(1)
	}
	if err := analyzer.SetInterval(sim.FromSeconds(interval.Seconds())); err != nil {
		fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
		os.Exit(1)
	}
	if err := analyzer.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
		os.Exit(1)
	}
	// The sampling ticker must stop on its own or RunCycles never drains
	// the event queue: one cycle is maintenance (~150 ms) + idle + exits.
	horizon := sim.FromSeconds(idle.Seconds() + 0.5)
	analyzer.StopAt(p.Scheduler().Now().Add(horizon))
	res, err := p.RunCycles(odrips.FixedCycles(1, 0, odrips.Duration(idle.Nanoseconds())*1000))
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
		os.Exit(1)
	}
	analyzer.Stop()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	header := append([]string{"t_us"}, analyzer.ChannelNames()...)
	if err := cw.Write(header); err != nil {
		fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
		os.Exit(1)
	}
	for _, s := range analyzer.Samples() {
		row := make([]string, 0, len(s.MW)+1)
		row = append(row, strconv.FormatFloat(float64(s.At)/1e6, 'f', 1, 64))
		for _, mw := range s.MW {
			row = append(row, strconv.FormatFloat(mw, 'f', 4, 64))
		}
		if err := cw.Write(row); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
			os.Exit(1)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		fmt.Fprintf(os.Stderr, "odrips-trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "captured %d samples over %.3f s; run average %.2f mW\n",
		len(analyzer.Samples()), res.Duration.Seconds(), res.AvgPowerMW)
}
