// Command odrips-loadgen replays concurrent bursty job submissions
// against a running odrips-server and asserts the serving contract:
//
//   - zero dropped jobs: every submission is eventually accepted
//     (503 queue_full answers are retried with backoff — backpressure
//     is allowed, loss is not) and every accepted job reaches "done";
//   - monotone progress: no progress frame of a job's results stream
//     moves any counter backwards;
//   - deterministic results: every job of a spec class streams a
//     byte-identical aggregates frame (the digests are printed, so two
//     loadgen runs against servers with different -workers counts can
//     be diffed line for line).
//
// Usage:
//
//	odrips-loadgen -addr http://127.0.0.1:8080 -jobs 1000 -burst
//	odrips-loadgen -addr http://127.0.0.1:8080 -jobs 200
//
// Exit status: 0 all assertions held, 1 a contract violation, 2 usage
// or transport failure.
package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "odrips-server base URL, or a comma-separated list to spread jobs round-robin over several servers (each job is watched on the server that accepted it; servers sharing one -memocachedir store must still agree on every class digest)")
	jobs := flag.Int("jobs", 200, "total submissions")
	conc := flag.Int("concurrency", 16, "concurrent submitter/watcher goroutines")
	classes := flag.Int("classes", 3, "distinct spec classes cycled over the jobs")
	devices := flag.Int("devices", 12, "fleet size per job")
	horizon := flag.String("horizon", "2m", "simulated horizon per job")
	burst := flag.Bool("burst", false, "submit everything first (stress backpressure), then watch; default interleaves")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	flag.Parse()

	if *jobs < 1 || *conc < 1 || *classes < 1 {
		fmt.Fprintln(os.Stderr, "odrips-loadgen: -jobs, -concurrency and -classes must be positive")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	lg := &loadgen{
		client:  &http.Client{},
		classes: make([]string, *classes),
	}
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSuffix(strings.TrimSpace(a), "/"); a != "" {
			lg.bases = append(lg.bases, a)
		}
	}
	if len(lg.bases) == 0 {
		fmt.Fprintln(os.Stderr, "odrips-loadgen: -addr lists no server")
		os.Exit(2)
	}
	for k := range lg.classes {
		lg.classes[k] = classSpec(k, *devices, *horizon)
	}

	// Probe every server before unleashing the fleet of submitters.
	for _, base := range lg.bases {
		if err := lg.health(ctx, base); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-loadgen: server %s not reachable: %v\n", base, err)
			os.Exit(2)
		}
	}

	start := time.Now()
	if *burst {
		ids := lg.fanOut(ctx, *jobs, *conc, func(ctx context.Context, i int) (string, error) {
			return lg.submit(ctx, lg.baseFor(i), i%len(lg.classes))
		})
		lg.fanOut(ctx, *jobs, *conc, func(ctx context.Context, i int) (string, error) {
			if ids[i] == "" {
				return "", nil // its submission already failed and was recorded
			}
			return "", lg.watch(ctx, lg.baseFor(i), ids[i], i%len(lg.classes))
		})
	} else {
		lg.fanOut(ctx, *jobs, *conc, func(ctx context.Context, i int) (string, error) {
			base := lg.baseFor(i)
			id, err := lg.submit(ctx, base, i%len(lg.classes))
			if err != nil {
				return "", err
			}
			return id, lg.watch(ctx, base, id, i%len(lg.classes))
		})
	}
	elapsed := time.Since(start)

	lg.mu.Lock()
	defer lg.mu.Unlock()
	fmt.Printf("odrips-loadgen: %d jobs, %d done, %d queue_full retries, %d classes, %d servers, %.1fs\n",
		*jobs, lg.done, lg.retries, len(lg.classes), len(lg.bases), elapsed.Seconds())
	digests := make([]string, 0, len(lg.digest))
	for k, d := range lg.digest {
		digests = append(digests, fmt.Sprintf("class %d aggregates sha256 %s", k, d))
	}
	sort.Strings(digests)
	for _, d := range digests {
		fmt.Println(d)
	}
	if len(lg.violations) > 0 {
		for _, v := range lg.violations {
			fmt.Fprintf(os.Stderr, "odrips-loadgen: VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	if lg.done != *jobs {
		fmt.Fprintf(os.Stderr, "odrips-loadgen: VIOLATION: %d of %d jobs completed\n", lg.done, *jobs)
		os.Exit(1)
	}
	fmt.Println("odrips-loadgen: OK")
}

// classSpec builds the k-th deterministic spec class: distinct enough
// to have their own run classes, small enough to finish in seconds.
func classSpec(k, devices int, horizon string) string {
	return fmt.Sprintf(`{"name":"load-%d","devices":%d,"horizon":%q,"shards":%d,`+
		`"spread":{"drift_ppb":[0,%d],"jitter_steps":["0s","%dms"]}}`,
		k, devices, horizon, k%3+1, 40*(k+1), 50*(k+1))
}

type loadgen struct {
	bases   []string
	client  *http.Client
	classes []string

	mu         sync.Mutex
	retries    int
	done       int
	digest     map[int]string // class → aggregates sha256
	violations []string
}

// baseFor pins job i to one server: the job is submitted to and watched
// on the same base (its results live in that server's queue), while the
// i%len spread round-robins the load — and, with servers sharing one
// memo store, exercises the cross-process claim protocol.
func (lg *loadgen) baseFor(i int) string { return lg.bases[i%len(lg.bases)] }

func (lg *loadgen) violate(format string, args ...any) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.violations = append(lg.violations, fmt.Sprintf(format, args...))
}

// fanOut runs fn for every job index on conc goroutines and collects
// the per-index results. fn errors are recorded as violations.
func (lg *loadgen) fanOut(ctx context.Context, jobs, conc int, fn func(context.Context, int) (string, error)) []string {
	out := make([]string, jobs)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				id, err := fn(ctx, i)
				if err != nil {
					lg.violate("job %d: %v", i, err)
					continue
				}
				out[i] = id
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

func (lg *loadgen) health(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := lg.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// submit posts one job of the class, retrying queue_full with backoff
// until the deadline. Any other non-202 answer is a violation.
func (lg *loadgen) submit(ctx context.Context, base string, class int) (string, error) {
	backoff := 5 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/v1/jobs", strings.NewReader(lg.classes[class]))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := lg.client.Do(req)
		if err != nil {
			return "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var jv struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &jv); err != nil || jv.ID == "" {
				return "", fmt.Errorf("202 with unusable body %q: %v", body, err)
			}
			return jv.ID, nil
		case http.StatusServiceUnavailable:
			lg.mu.Lock()
			lg.retries++
			lg.mu.Unlock()
			select {
			case <-ctx.Done():
				return "", fmt.Errorf("dropped: deadline during queue_full backoff: %w", ctx.Err())
			case <-time.After(backoff):
			}
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		default:
			return "", fmt.Errorf("submit rejected: status %d body %s", resp.StatusCode, body)
		}
	}
}

// progressCounters is the subset of the progress frame the monotone
// assertion tracks.
type progressCounters struct {
	DevicesDone  int    `json:"devices_done"`
	CyclesDone   uint64 `json:"cycles_done"`
	WarmRunsDone int    `json:"warm_runs_done"`
	RunsDone     int    `json:"runs_done"`
}

// watch streams the job's results, asserting framing, monotone
// progress, terminal done state, and the class's aggregates digest.
func (lg *loadgen) watch(ctx context.Context, base, id string, class int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/jobs/"+id+"/results", nil)
	if err != nil {
		return err
	}
	resp, err := lg.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("results: status %d", resp.StatusCode)
	}

	var (
		last      progressCounters
		lastFrame string
		frames    int
		aggDigest string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var f struct {
			Frame string `json:"frame"`
			State string `json:"state"`
			Job   struct {
				Progress progressCounters `json:"progress"`
			} `json:"job"`
			Payload json.RawMessage `json:"payload"`
		}
		if err := json.Unmarshal(line, &f); err != nil {
			return fmt.Errorf("unparsable stream line %q: %v", line, err)
		}
		frames++
		lastFrame = f.Frame
		switch f.Frame {
		case "progress":
			p := f.Job.Progress
			if p.DevicesDone < last.DevicesDone || p.CyclesDone < last.CyclesDone ||
				p.WarmRunsDone < last.WarmRunsDone || p.RunsDone < last.RunsDone {
				return fmt.Errorf("progress moved backwards: %+v then %+v", last, p)
			}
			last = p
		case "aggregates":
			sum := sha256.Sum256(bytes.TrimSpace(f.Payload))
			aggDigest = hex.EncodeToString(sum[:])
		case "error":
			return fmt.Errorf("error frame: %s", line)
		case "done":
			if f.State != "done" {
				return fmt.Errorf("terminal state %q", f.State)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if frames == 0 || lastFrame != "done" {
		return fmt.Errorf("stream ended on frame %q after %d frames (job stuck or stream truncated)", lastFrame, frames)
	}
	if aggDigest == "" {
		return fmt.Errorf("no aggregates frame")
	}

	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.digest == nil {
		lg.digest = make(map[int]string)
	}
	if prev, ok := lg.digest[class]; ok && prev != aggDigest {
		lg.violations = append(lg.violations,
			fmt.Sprintf("job %s: class %d aggregates digest %s diverges from %s", id, class, aggDigest, prev))
	} else {
		lg.digest[class] = aggDigest
	}
	lg.done++
	return nil
}
