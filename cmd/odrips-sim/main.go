// Command odrips-sim runs one platform configuration through a
// connected-standby workload and prints the measured summary.
//
// Usage:
//
//	odrips-sim -config odrips -cycles 10
//	odrips-sim -config baseline -idle 30s -corefreq 1000
//	odrips-sim -config odrips-pcm -cycles 5 -seed 7
//	odrips-sim -config odrips -breakeven -workers 8
//	odrips-sim -config odrips -faults "wake@1.3;meefail@2:1" -flows
//
// -breakeven runs the empirical residency sweep of the selected
// configuration against the baseline, fanning sweep points across a
// -workers-sized pool (default: all cores) with deterministic results.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"odrips"
	"odrips/internal/dram"
	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/prof"
	"odrips/internal/workload"
)

func configByName(name string) (odrips.Config, error) {
	base := odrips.DefaultConfig()
	switch name {
	case "baseline":
		return base, nil
	case "wake-up-off":
		return base.WithTechniques(odrips.WakeUpOff), nil
	case "aon-io-gate":
		return base.WithTechniques(odrips.WakeUpOff | odrips.AONIOGate), nil
	case "ctx-sgx-dram":
		return base.WithTechniques(odrips.CtxSGXDRAM), nil
	case "odrips":
		return odrips.ODRIPSConfig(), nil
	case "odrips-mram":
		c := base.WithTechniques(odrips.WakeUpOff | odrips.AONIOGate)
		c.CtxInEMRAM = true
		return c, nil
	case "odrips-pcm":
		c := odrips.ODRIPSConfig()
		c.MainMemory = dram.PCM
		return c, nil
	}
	return odrips.Config{}, fmt.Errorf("unknown config %q (baseline, wake-up-off, aon-io-gate, ctx-sgx-dram, odrips, odrips-mram, odrips-pcm)", name)
}

func main() {
	name := flag.String("config", "odrips", "platform configuration")
	cycles := flag.Int("cycles", 5, "connected-standby cycles to run")
	idle := flag.Duration("idle", 30*time.Second, "idle window per cycle (0 = realistic jittered workload)")
	coreFreq := flag.Int("corefreq", 800, "maintenance core frequency in MHz (800/1000/1500)")
	dramRate := flag.Int("dramrate", 1600, "DRAM transfer rate in MT/s (1600/1067/800)")
	seed := flag.Int64("seed", 1, "context/workload seed")
	generation := flag.String("generation", "skylake", "skylake or haswell (baseline DRIPS only)")
	s3 := flag.Bool("s3", false, "run one ACPI S3 suspend/resume cycle instead of connected standby")
	flows := flag.Bool("flows", false, "print the recorded entry/exit flow steps")
	faultsFlag := flag.String("faults", "", "fault plan `kind@cycle[.step][:arg];...` (kinds: wake, wakex, meefail, bitflip, drift, fetglitch)")
	traceFile := flag.String("workload", "", "CSV trace of cycles (active_ms,idle_ms,wake); overrides -cycles/-idle")
	breakeven := flag.Bool("breakeven", false, "sweep the empirical break-even residency vs the baseline configuration")
	workers := flag.Int("workers", 0, "simulation worker pool size for -breakeven (0 = all cores, 1 = sequential)")
	ffFlag := flag.String("fastforward", "on", "steady-state fast-forward: on, off, or verify (output is byte-identical across all three)")
	memoFlag := flag.String("memocache", "", "persistent memo store: off, rw, ro, or verify (default: inherit ODRIPS_MEMOCACHE, normally off; output is byte-identical across all modes)")
	memoDir := flag.String("memocachedir", "", "persistent memo store directory (default .odrips-memocache)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memProfile := flag.String("memprofile", "", "write an allocation profile to `file`")
	flag.Parse()

	cfg, err := configByName(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
		os.Exit(2)
	}
	ffMode, err := odrips.ParseFFMode(*ffFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
		os.Exit(2)
	}
	odrips.SetDefaultFastForward(ffMode)
	if *memoFlag != "" || *memoDir != "" {
		if err := odrips.SetupMemoCache(*memoFlag, *memoDir); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-sim: -memocache: %v\n", err)
			os.Exit(2)
		}
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
		}
	}()
	cfg.CoreFreqMHz = *coreFreq
	cfg.DRAMMTps = *dramRate
	cfg.Seed = *seed
	switch *generation {
	case "skylake":
	case "haswell":
		cfg.Generation = platform.GenHaswell
	default:
		fmt.Fprintf(os.Stderr, "odrips-sim: unknown generation %q\n", *generation)
		os.Exit(2)
	}

	if *breakeven {
		sweep := odrips.DefaultSweep()
		sweep.Workers = *workers
		be, ok, err := odrips.SweepBreakEven(odrips.DefaultConfig(), cfg, sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrips-sim: break-even sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("configuration:        %s\n", cfg.Name())
		if !ok {
			fmt.Printf("break-even residency: none in [%v, %v]\n", sweep.Lo, sweep.Hi)
			return
		}
		fmt.Printf("break-even residency: %.2f ms (grid %v..%v step %v)\n",
			be.Milliseconds(), sweep.Lo, sweep.Hi, sweep.Step)
		return
	}

	p, err := odrips.NewPlatform(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
		os.Exit(1)
	}
	if *faultsFlag != "" {
		plan, err := odrips.ParseFaultPlan(*faultsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrips-sim: -faults: %v\n", err)
			os.Exit(2)
		}
		if err := p.InjectFaults(plan); err != nil {
			fmt.Fprintf(os.Stderr, "odrips-sim: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	if *s3 {
		res, err := p.RunS3Cycle(odrips.Duration(idle.Nanoseconds()) * 1000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ACPI S3 suspend/resume on %s\n", cfg.Name())
		fmt.Printf("suspend power:  %.2f mW\n", res.SuspendPowerMW)
		fmt.Printf("window average: %.2f mW over %.1f s\n", res.AvgPowerMW, res.Duration.Seconds())
		fmt.Printf("resume latency: %v (vs ~300 us DRIPS exit)\n", res.ResumeLatency)
		return
	}

	var cyclesList []odrips.Cycle
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
			os.Exit(1)
		}
		cyclesList, err = workload.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
			os.Exit(1)
		}
	case *idle > 0:
		cyclesList = odrips.FixedCycles(*cycles, 0, odrips.Duration(idle.Nanoseconds())*1000)
	default:
		cyclesList = odrips.ConnectedStandby(*cycles, *seed)
	}
	res, err := p.RunCycles(cyclesList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrips-sim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("configuration:        %s\n", cfg.Name())
	fmt.Printf("simulated time:       %.3f s over %d cycles\n", res.Duration.Seconds(), res.Cycles)
	fmt.Printf("average power:        %.2f mW\n", res.AvgPowerMW)
	for _, st := range power.States() {
		fmt.Printf("  %-7s %8.2f mW   residency %8.4f%%\n",
			st.String()+":", res.StatePowerMW[st], 100*res.Residency[st])
	}
	fmt.Printf("entry latency:        avg %v, max %v\n", res.EntryAvg, res.EntryMax)
	fmt.Printf("exit latency:         avg %v, max %v\n", res.ExitAvg, res.ExitMax)
	if res.CtxSave > 0 {
		fmt.Printf("context save:         %v\n", res.CtxSave)
		fmt.Printf("context restore:      %v (verified %d times)\n", res.CtxRestore, res.CtxVerified)
	}
	fmt.Printf("timer drift:          %.3f ppb\n", res.TimerDriftPPB)
	fmt.Printf("wake sources:         %v\n", res.WakeCounts)
	fmt.Printf("transition energy:    %.1f uJ/cycle at %.2f mW idle\n",
		res.CycleEnergy.TransitionUJ, res.CycleEnergy.IdleMW)
	if *faultsFlag != "" {
		fmt.Printf("faults:               %s\n", res.Faults.String())
		if p.Degraded() {
			fmt.Printf("                      context store degraded to retention SRAM\n")
		}
	}

	if *flows {
		fmt.Println("flow trace (most recent steps):")
		for _, fs := range p.FlowTrace() {
			fmt.Printf("  %-5s %-22s at %-12v took %v\n", fs.Flow, fs.Step, fs.At, fs.Duration)
		}
	}

	// Compare against the analytic model, §7 style.
	prof, err := p.AnalyticProfile(platformIdle(cyclesList))
	if err == nil {
		acc := 100 * (1 - abs(prof.AverageMW()-res.AvgPowerMW)/res.AvgPowerMW)
		fmt.Printf("Equation-1 model:     %.2f mW (accuracy %.1f%%)\n", prof.AverageMW(), acc)
	}
}

func platformIdle(cycles []odrips.Cycle) odrips.Duration {
	if len(cycles) == 0 {
		return 30 * odrips.Second
	}
	return cycles[0].Idle
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
