// Command odrips-server exposes the fleet engine as an HTTP/JSON
// service: a bounded job queue of fleet-scale simulations executed by a
// worker pool against one shared memo plane, with live progress
// streaming and graceful drain.
//
// Usage:
//
//	odrips-server -addr 127.0.0.1:8080
//	odrips-server -addr 127.0.0.1:0 -workers 4 -capacity 256
//	odrips-server -memocache rw    # persist memo classes across restarts
//
// API (all bodies JSON; errors are {"error":{"code","message"}}):
//
//	POST   /v1/jobs              submit a fleet spec (the odrips-fleet
//	                             -spec file format); 202 with the job ID
//	GET    /v1/jobs/{id}         job state + per-shard progress
//	DELETE /v1/jobs/{id}         cancel (pending or running)
//	GET    /v1/jobs/{id}/results NDJSON stream: progress frames while
//	                             the job runs, then aggregates, memo,
//	                             shards, and a final done frame
//	GET    /v1/stats             queue + memo plane + store counters
//	GET    /healthz              liveness
//
// Job IDs are deterministic: (seed, acceptance sequence, canonical
// spec) — replaying a submission script against a fresh server mints
// the same IDs. Aggregates are byte-identical at any -workers count.
//
// On SIGTERM/SIGINT the server stops accepting jobs, finishes what is
// queued and running (bounded by -drain; leftover jobs are canceled),
// then exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"odrips"
	"odrips/internal/fleet"
	"odrips/internal/jobqueue"
	"odrips/internal/memostore"
	"odrips/internal/platform"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the chosen address is printed)")
	workers := flag.Int("workers", 0, "job execution pool size (0 = 4); aggregates are byte-identical at any value")
	capacity := flag.Int("capacity", 0, "pending job FIFO bound (0 = 256); a full queue answers 503 queue_full")
	seed := flag.Int64("seed", 0, "job-ID seed (0 = 1); same seed + same submissions = same IDs")
	maxDevices := flag.Int("max-devices", 0, "largest accepted fleet (0 = 1e6)")
	retain := flag.Int("retain", 0, "finished jobs kept queryable (0 = 4096)")
	planeClasses := flag.Int("plane-classes", 0, "shared memo plane class bound (0 = package default)")
	ffFlag := flag.String("fastforward", "on", "steady-state fast-forward: on, off, or verify")
	memoFlag := flag.String("memocache", "", "persistent memo store: off, rw, ro, or verify")
	memoDir := flag.String("memocachedir", "", "persistent memo store directory (default .odrips-memocache)")
	drain := flag.Duration("drain", 30*time.Second, "max time to finish queued+running jobs on shutdown before canceling them")
	progressEvery := flag.Duration("progress-interval", 100*time.Millisecond, "pacing of result-stream progress frames")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "odrips-server: %v\n", err)
		os.Exit(2)
	}

	ffMode, err := odrips.ParseFFMode(*ffFlag)
	if err != nil {
		fail(err)
	}
	odrips.SetDefaultFastForward(ffMode)
	if *memoFlag != "" || *memoDir != "" {
		if err := odrips.SetupMemoCache(*memoFlag, *memoDir); err != nil {
			fail(fmt.Errorf("-memocache: %w", err))
		}
	}

	// One plane for the process: every job warms it, every later job
	// draws from it, the persistent store (when enabled) backs it.
	plane := platform.NewMemoPlane(memostore.Default(), *planeClasses)
	fleet.SetDefaultPlane(plane)
	q := jobqueue.New(jobqueue.Options{
		Capacity:   *capacity,
		Workers:    *workers,
		Seed:       *seed,
		MaxDevices: *maxDevices,
		Retain:     *retain,
		Plane:      plane,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The smoke harness and loadgen scripts grep this line for the
	// resolved address, so keep its shape stable.
	fmt.Printf("odrips-server: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: newServer(q, plane, *progressEvery).handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { //odrips:allow gotrack the accept loop is joined via serveErr below
		serveErr <- srv.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		fail(err)
	case <-ctx.Done():
	}
	fmt.Println("odrips-server: draining")

	// Drain order: stop intake and finish jobs first (result streams
	// complete), then shut the HTTP side down.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := q.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "odrips-server: shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "odrips-server: serve: %v\n", err)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "odrips-server: drain: %v (remaining jobs canceled)\n", drainErr)
		os.Exit(1)
	}
	fmt.Println("odrips-server: drained")
}
