package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"odrips/internal/experiments"
	"odrips/internal/fleet"
	"odrips/internal/jobqueue"
	"odrips/internal/memostore"
	"odrips/internal/platform"
	"odrips/internal/report"
)

// maxSpecBytes bounds a job submission body; real specs are well under
// a kilobyte, so a megabyte is generous without being a memory hazard.
const maxSpecBytes = 1 << 20

// server is the HTTP layer over one job queue and its shared memo
// plane. Routing is by hand (not ServeMux patterns) so every miss —
// unknown path, wrong method, bad ID — produces the same typed JSON
// error body the API promises, instead of the mux's plain-text 404/405.
type server struct {
	q     *jobqueue.Queue
	plane *platform.MemoPlane
	// progressEvery paces the results stream's progress frames; tests
	// shrink it to keep streaming coverage fast.
	progressEvery time.Duration
}

func newServer(q *jobqueue.Queue, plane *platform.MemoPlane, progressEvery time.Duration) *server {
	if progressEvery <= 0 {
		progressEvery = 100 * time.Millisecond
	}
	return &server{q: q, plane: plane, progressEvery: progressEvery}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no route %s", r.URL.Path))
	})
	return mux
}

// apiError is the one error body shape every non-2xx response carries.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var e apiError
	e.Error.Code = code
	e.Error.Message = msg
	writeJSON(w, status, e)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// The value is one of our own serializable types; an encode failure
	// here means the response is already half-written, so there is
	// nothing better to do than let the client see the truncation.
	_ = enc.Encode(v)
}

// submitError maps a queue submission failure to its response.
func submitError(w http.ResponseWriter, err error) {
	var se *fleet.SpecError
	switch {
	case errors.As(err, &se):
		writeError(w, http.StatusBadRequest, "bad_spec", se.Error())
	case errors.Is(err, jobqueue.ErrTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, "too_large", err.Error())
	case errors.Is(err, jobqueue.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "queue_full", err.Error())
	case errors.Is(err, jobqueue.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// jobView is the job status representation shared by the submit
// response, the status endpoint, and the stream's progress frames.
type jobView struct {
	ID       string              `json:"id"`
	Seq      uint64              `json:"seq"`
	State    jobqueue.State      `json:"state"`
	Progress fleet.ProgressStats `json:"progress"`
}

func viewOf(j *jobqueue.Job) jobView {
	return jobView{ID: j.ID(), Seq: j.Seq(), State: j.State(), Progress: j.Progress()}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" /healthz")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// statsView is the /v1/stats body: the queue's counters plus every memo
// layer behind it (plane LRU, persistent store, point caches).
type statsView struct {
	Queue  jobqueue.Stats             `json:"queue"`
	Plane  platform.MemoPlaneStats    `json:"plane"`
	Store  memostore.Stats            `json:"store"`
	Points experiments.PointMemoStats `json:"points"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" /v1/stats")
		return
	}
	writeJSON(w, http.StatusOK, statsView{
		Queue:  s.q.Stats(),
		Plane:  s.plane.Stats(),
		Store:  s.plane.StoreStats(),
		Points: experiments.PointCacheStats(),
	})
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" /v1/jobs")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large", err.Error())
		return
	}
	spec, err := fleet.ParseSpecJSON(body)
	if err != nil {
		submitError(w, err)
		return
	}
	j, err := s.q.Submit(spec)
	if err != nil {
		submitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, viewOf(j))
}

// handleJob serves /v1/jobs/{id} (GET status, DELETE cancel) and
// /v1/jobs/{id}/results (GET NDJSON stream).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "results") {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no route %s", r.URL.Path))
		return
	}
	j, err := s.q.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("job %s", id))
		return
	}
	switch {
	case sub == "results":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" results")
			return
		}
		s.streamResults(w, r, j)
	case r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, viewOf(j))
	case r.Method == http.MethodDelete:
		state, err := s.q.Cancel(id)
		if err != nil {
			writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("job %s", id))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": state})
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", r.Method+" /v1/jobs/{id}")
	}
}

// Stream frame shapes. Every line is one JSON object with a "frame"
// discriminator; the aggregates payload is embedded as raw bytes so the
// byte-identity guarantee of the fleet engine survives the transport
// (the server never re-marshals what determinism tests will hash).
type progressFrame struct {
	Frame string  `json:"frame"` // "progress"
	Job   jobView `json:"job"`
}

type resultFrame struct {
	Frame   string          `json:"frame"` // "aggregates", "memo", "shards"
	Payload json.RawMessage `json:"payload"`
}

type doneFrame struct {
	Frame string         `json:"frame"` // "done"
	State jobqueue.State `json:"state"`
}

type errorFrame struct {
	Frame   string `json:"frame"` // "error"
	Code    string `json:"code"`
	Message string `json:"message"`
}

// streamResults writes the job's NDJSON result stream: at least one
// progress frame (more while the job runs, paced by progressEvery),
// then on success the aggregates/memo/shards frames, and always a
// terminal done frame (or an error frame first for failed/canceled
// jobs). A disconnecting client stops the stream but never the job.
func (s *server) streamResults(w http.ResponseWriter, r *http.Request, j *jobqueue.Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	nd := report.NewNDJSON(w)
	if err := nd.Write(progressFrame{Frame: "progress", Job: viewOf(j)}); err != nil {
		return
	}
	tick := time.NewTicker(s.progressEvery)
	defer tick.Stop()
wait:
	for {
		select {
		case <-j.Done():
			break wait
		case <-r.Context().Done():
			return
		case <-tick.C:
			if err := nd.Write(progressFrame{Frame: "progress", Job: viewOf(j)}); err != nil {
				return
			}
		}
	}

	rep, err := j.Result()
	if err != nil {
		code := "failed"
		if j.State() == jobqueue.StateCanceled {
			code = "canceled"
		}
		_ = nd.Write(errorFrame{Frame: "error", Code: code, Message: err.Error()})
		_ = nd.Write(doneFrame{Frame: "done", State: j.State()})
		return
	}
	// Final progress frame: the completed counters.
	if err := nd.Write(progressFrame{Frame: "progress", Job: viewOf(j)}); err != nil {
		return
	}
	for _, part := range []struct {
		frame string
		v     any
	}{
		{"aggregates", rep.Aggregates},
		{"memo", rep.Memo},
		{"shards", rep.Shards},
	} {
		raw, err := json.Marshal(part.v)
		if err != nil {
			_ = nd.Write(errorFrame{Frame: "error", Code: "internal", Message: err.Error()})
			_ = nd.Write(doneFrame{Frame: "done", State: jobqueue.StateFailed})
			return
		}
		if err := nd.Write(resultFrame{Frame: part.frame, Payload: raw}); err != nil {
			return
		}
	}
	_ = nd.Write(doneFrame{Frame: "done", State: j.State()})
}
