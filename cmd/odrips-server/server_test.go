package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"odrips/internal/fleet"
	"odrips/internal/jobqueue"
	"odrips/internal/platform"
)

// testSpec is the canonical small job every API test submits: fast to
// simulate, heterogeneous enough to exercise shards and run classes.
const testSpec = `{
	"name": "api", "devices": 12, "horizon": "2m", "shards": 3,
	"spread": {
		"drift_ppb": [0, 40],
		"battery_mwh": [30000, 36000],
		"jitter_steps": ["0s", "250ms"]
	}
}`

// startServer brings up a real HTTP server over a fresh queue and
// plane; the caller gets the base URL and the queue for Hold/Release
// orchestration.
func startServer(t *testing.T, opts jobqueue.Options) (*httptest.Server, *jobqueue.Queue) {
	t.Helper()
	plane := platform.NewMemoPlane(nil, 0)
	if opts.Plane == nil {
		opts.Plane = plane
	}
	q := jobqueue.New(opts)
	ts := httptest.NewServer(newServer(q, plane, 2*time.Millisecond).handler())
	t.Cleanup(ts.Close)
	return ts, q
}

func doJSON(t *testing.T, method, url string, body string, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, url, b, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// frame is a decoded NDJSON stream line.
type frame struct {
	Frame   string          `json:"frame"`
	Job     *jobView        `json:"job"`
	Payload json.RawMessage `json:"payload"`
	State   jobqueue.State  `json:"state"`
	Code    string          `json:"code"`
	Message string          `json:"message"`
}

// readStream consumes a results stream, checking NDJSON framing: every
// line is exactly one JSON object, no blank lines, no trailing junk.
func readStream(t *testing.T, url string) []frame {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results stream: content type %q", ct)
	}
	var frames []frame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			t.Fatal("blank line inside NDJSON stream")
		}
		var f frame
		dec := json.NewDecoder(bytes.NewReader(line))
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("unparsable stream line %q: %v", line, err)
		}
		if dec.More() {
			t.Fatalf("stream line holds more than one JSON value: %q", line)
		}
		if f.Frame == "" {
			t.Fatalf("frame without discriminator: %q", line)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("empty results stream")
	}
	return frames
}

// framesByKind indexes a stream, keeping the LAST frame of each kind.
func framesByKind(frames []frame) map[string]frame {
	m := make(map[string]frame)
	for _, f := range frames {
		m[f.Frame] = f
	}
	return m
}

func submit(t *testing.T, base, spec string) jobView {
	t.Helper()
	var jv jobView
	code, _ := doJSON(t, http.MethodPost, base+"/v1/jobs", spec, &jv)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if jv.ID == "" || jv.Seq == 0 {
		t.Fatalf("submit: incomplete job view %+v", jv)
	}
	return jv
}

// TestSubmitStreamContract is the happy-path API contract: 202 submit,
// status lookup, and a well-framed results stream whose aggregates
// payload is byte-identical to a direct fleet.Run of the same spec.
func TestSubmitStreamContract(t *testing.T) {
	spec, err := fleet.ParseSpecJSON([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fleet.Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := json.Marshal(direct.Aggregates)
	if err != nil {
		t.Fatal(err)
	}

	ts, _ := startServer(t, jobqueue.Options{Workers: 2})
	jv := submit(t, ts.URL, testSpec)
	if jv.State != jobqueue.StatePending && jv.State != jobqueue.StateRunning {
		t.Fatalf("fresh job in state %s", jv.State)
	}

	var got jobView
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+jv.ID, "", &got); code != http.StatusOK {
		t.Fatalf("status lookup: %d", code)
	}
	if got.ID != jv.ID {
		t.Fatalf("lookup returned job %s", got.ID)
	}

	frames := readStream(t, ts.URL+"/v1/jobs/"+jv.ID+"/results")
	if frames[0].Frame != "progress" {
		t.Fatalf("stream opens with %q, want progress", frames[0].Frame)
	}
	last := frames[len(frames)-1]
	if last.Frame != "done" || last.State != jobqueue.StateDone {
		t.Fatalf("stream ends with %+v", last)
	}
	kinds := framesByKind(frames)
	for _, want := range []string{"progress", "aggregates", "memo", "shards", "done"} {
		if _, ok := kinds[want]; !ok {
			t.Fatalf("stream missing %q frame", want)
		}
	}
	if string(kinds["aggregates"].Payload) != string(golden) {
		t.Fatalf("streamed aggregates diverge from direct run:\n got %s\nwant %s",
			kinds["aggregates"].Payload, golden)
	}
	// The final progress frame carries the completed counters.
	fp := kinds["progress"].Job
	if fp == nil || fp.Progress.DevicesDone != fp.Progress.Devices {
		t.Fatalf("final progress frame incomplete: %+v", fp)
	}
	// Streams are re-readable: results are not consumed.
	again := framesByKind(readStream(t, ts.URL+"/v1/jobs/"+jv.ID+"/results"))
	if string(again["aggregates"].Payload) != string(golden) {
		t.Fatal("second stream read diverges")
	}
}

// TestWorkerCountByteIdentity: the same spec through queues with 1 and
// 4 workers streams byte-identical aggregates frames.
func TestWorkerCountByteIdentity(t *testing.T) {
	var lines []string
	for _, workers := range []int{1, 4} {
		ts, _ := startServer(t, jobqueue.Options{Workers: workers})
		jv := submit(t, ts.URL, testSpec)
		kinds := framesByKind(readStream(t, ts.URL+"/v1/jobs/"+jv.ID+"/results"))
		lines = append(lines, string(kinds["aggregates"].Payload))
	}
	if lines[0] != lines[1] {
		t.Fatalf("aggregates differ across worker counts:\n w1 %s\n w4 %s", lines[0], lines[1])
	}
}

// TestBadSpec: malformed, unknown-field, and invalid specs all produce
// a typed 400 bad_spec body.
func TestBadSpec(t *testing.T) {
	ts, _ := startServer(t, jobqueue.Options{Workers: 1})
	for _, body := range []string{
		`not json`,
		`{"devices": 2, "typo_knob": 3}`,
		`{"devices": 0}`,
		`{"devices": 4, "wake_period": "-30s"}`,
		`{"devices": 4, "horizon": "900000h"}`, // sim-time overflow
	} {
		var e apiError
		code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &e)
		if code != http.StatusBadRequest || e.Error.Code != "bad_spec" {
			t.Fatalf("body %q: status %d, code %q", body, code, e.Error.Code)
		}
		if e.Error.Message == "" {
			t.Fatalf("body %q: empty error message", body)
		}
	}
}

// TestTooLargeAndQueueFull: fleet-size and backpressure rejections.
func TestTooLargeAndQueueFull(t *testing.T) {
	ts, q := startServer(t, jobqueue.Options{Workers: 1, Capacity: 1, MaxDevices: 100, Hold: true})
	var e apiError
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", `{"devices": 101}`, &e)
	if code != http.StatusRequestEntityTooLarge || e.Error.Code != "too_large" {
		t.Fatalf("oversize fleet: status %d code %q", code, e.Error.Code)
	}

	submit(t, ts.URL, testSpec) // fills the held FIFO
	code, hdr := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", testSpec, &e)
	if code != http.StatusServiceUnavailable || e.Error.Code != "queue_full" {
		t.Fatalf("overflow: status %d code %q", code, e.Error.Code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("queue_full without Retry-After")
	}
	q.Release()
}

// TestCancelPendingViaDELETE: a held pending job cancels instantly and
// its results stream reports the cancellation.
func TestCancelPendingViaDELETE(t *testing.T) {
	ts, q := startServer(t, jobqueue.Options{Workers: 1, Capacity: 4, Hold: true})
	jv := submit(t, ts.URL, testSpec)
	var out struct {
		ID    string         `json:"id"`
		State jobqueue.State `json:"state"`
	}
	code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+jv.ID, "", &out)
	if code != http.StatusOK || out.State != jobqueue.StateCanceled {
		t.Fatalf("cancel: status %d state %s", code, out.State)
	}
	q.Release()
	frames := readStream(t, ts.URL+"/v1/jobs/"+jv.ID+"/results")
	kinds := framesByKind(frames)
	if kinds["error"].Code != "canceled" {
		t.Fatalf("canceled job streamed %+v", kinds["error"])
	}
	if last := frames[len(frames)-1]; last.Frame != "done" || last.State != jobqueue.StateCanceled {
		t.Fatalf("stream ends with %+v", last)
	}
	if _, ok := kinds["aggregates"]; ok {
		t.Fatal("canceled job streamed aggregates")
	}
}

// TestCancelMidRun: DELETE while the engine is simulating stops the job
// at a device boundary; the stream reports canceled, not done.
func TestCancelMidRun(t *testing.T) {
	// 64 drift classes at one engine worker → a wide cancel window.
	var sb strings.Builder
	sb.WriteString(`{"name":"wide","devices":64,"horizon":"2m","workers":1,"spread":{"drift_ppb":[0`)
	for i := 1; i < 64; i++ {
		fmt.Fprintf(&sb, ",%d", i*10)
	}
	sb.WriteString(`]}}`)

	ts, _ := startServer(t, jobqueue.Options{Workers: 1})
	jv := submit(t, ts.URL, sb.String())
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st jobView
		if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+jv.ID, "", &st); code != http.StatusOK {
			t.Fatalf("poll: %d", code)
		}
		if st.Progress.WarmRunsDone > 0 {
			break
		}
		if st.State.Finished() {
			t.Fatal("job finished before the cancel window opened")
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+jv.ID, "", nil); code != http.StatusOK {
		t.Fatalf("cancel: %d", code)
	}
	frames := readStream(t, ts.URL+"/v1/jobs/"+jv.ID+"/results")
	last := frames[len(frames)-1]
	if last.Frame != "done" || last.State != jobqueue.StateCanceled {
		t.Fatalf("stream ends with %+v", last)
	}
	if framesByKind(frames)["error"].Code != "canceled" {
		t.Fatal("mid-run cancel did not stream a canceled error frame")
	}
}

// TestRoutesAndMethods: every miss is a typed JSON error.
func TestRoutesAndMethods(t *testing.T) {
	ts, _ := startServer(t, jobqueue.Options{Workers: 1})
	cases := []struct {
		method, path string
		status       int
		code         string
	}{
		{http.MethodGet, "/v1/jobs/job-000001-beef", http.StatusNotFound, "not_found"},
		{http.MethodDelete, "/v1/jobs/job-000001-beef", http.StatusNotFound, "not_found"},
		{http.MethodGet, "/v1/jobs/job-000001-beef/results", http.StatusNotFound, "not_found"},
		{http.MethodGet, "/v1/jobs/x/nope", http.StatusNotFound, "not_found"},
		{http.MethodGet, "/nope", http.StatusNotFound, "not_found"},
		{http.MethodPut, "/v1/jobs", http.StatusMethodNotAllowed, "method_not_allowed"},
		{http.MethodGet, "/v1/jobs", http.StatusMethodNotAllowed, "method_not_allowed"},
		{http.MethodPost, "/v1/stats", http.StatusMethodNotAllowed, "method_not_allowed"},
		{http.MethodPost, "/healthz", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, c := range cases {
		var e apiError
		code, _ := doJSON(t, c.method, ts.URL+c.path, "", &e)
		if code != c.status || e.Error.Code != c.code {
			t.Fatalf("%s %s: status %d code %q (want %d %q)",
				c.method, c.path, code, e.Error.Code, c.status, c.code)
		}
	}
	var ok map[string]bool
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", "", &ok); code != http.StatusOK || !ok["ok"] {
		t.Fatalf("healthz: %d %v", code, ok)
	}
}

// TestStatsShape: /v1/stats reflects queue activity and exposes the
// memo layers.
func TestStatsShape(t *testing.T) {
	ts, _ := startServer(t, jobqueue.Options{Workers: 2})
	jv := submit(t, ts.URL, testSpec)
	readStream(t, ts.URL+"/v1/jobs/"+jv.ID+"/results") // wait for done
	var sv statsView
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", "", &sv); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if sv.Queue.Capacity == 0 || sv.Queue.Workers != 2 {
		t.Fatalf("queue stats %+v", sv.Queue)
	}
	if sv.Queue.Accepted != 1 || sv.Queue.Done != 1 {
		t.Fatalf("queue counters %+v", sv.Queue)
	}
	if sv.Plane.Classes == 0 {
		t.Fatalf("plane stats empty: %+v", sv.Plane)
	}
}
