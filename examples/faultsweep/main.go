// Fault sweep: what each recovery edge costs. The paper's flows assume
// entry is never raced, restore always verifies, calibration never ages,
// and the FET latches first try; the fault plane violates each assumption
// on a deterministic schedule and the platform recovers — abort/unwind,
// retry/degrade, recalibrate, re-drive. This example injects one scenario
// at a time into an otherwise identical ODRIPS run and prints the energy
// bill, then shows a single faulted run in detail.
package main

import (
	"fmt"
	"log"
	"os"

	"odrips"
)

func main() {
	// The library sweep: every recovery edge vs. the clean run.
	r, err := odrips.FaultSweep()
	if err != nil {
		log.Fatal(err)
	}
	r.Table().Render(os.Stdout)

	// One scenario in detail: a wake fires while entry is saving the
	// context (cycle 1, step 3), then a persistent restore failure in
	// cycle 2 degrades the context store to retention SRAM.
	plan, err := odrips.ParseFaultPlan("wake@1.3;meefail@2:1")
	if err != nil {
		log.Fatal(err)
	}
	p, err := odrips.NewPlatform(odrips.ODRIPSConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := p.InjectFaults(plan); err != nil {
		log.Fatal(err)
	}
	res, err := p.RunCycles(odrips.FixedCycles(3, 0, 30*odrips.Second))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("plan %q over 3x30s cycles:\n", plan.String())
	fmt.Printf("  average power: %.3f mW\n", res.AvgPowerMW)
	fmt.Printf("  %s\n", res.Faults.String())
	fmt.Printf("  degraded to retention SRAM: %v\n", p.Degraded())
	fmt.Println("  recovery steps in the flow trace:")
	for _, fs := range p.FlowTrace() {
		if fs.Flow == "fault" || fs.Flow == "abort" || fs.Step == "recalibrate" {
			fmt.Printf("    %-6s %-22s at %-14v took %v\n",
				fs.Flow, fs.Step, fs.At, fs.Duration)
		}
	}
}
