// Tamper detection: the security story behind §6. ODRIPS parks the
// processor context — configuration registers, firmware patches, fuse
// values — in DRAM, which the paper's threat model treats as untrusted
// (cold-boot, bus snooping, RowHammer-class attacks). This example plays
// the attacker: it waits until the platform is asleep in ODRIPS, wakes the
// DRAM behind the platform's back, corrupts or rolls back the protected
// region, and shows the MEE refusing the restore on the next wake.
package main

import (
	"fmt"
	"log"

	"odrips"
	"odrips/internal/dram"
)

func attack(name string, corrupt func(p *odrips.Platform) error) {
	p, err := odrips.NewPlatform(odrips.ODRIPSConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Strike 10 s into the 30 s idle window.
	p.Scheduler().At(p.Scheduler().Now().Add(10*odrips.Second), "attack", func() {
		if err := corrupt(p); err != nil {
			log.Fatalf("%s: attack setup failed: %v", name, err)
		}
	})
	_, err = p.RunCycles(odrips.FixedCycles(1, 0, 30*odrips.Second))
	if err != nil {
		fmt.Printf("%-28s DETECTED: %v\n", name, err)
		return
	}
	fmt.Printf("%-28s !!! restore succeeded — protection failed\n", name)
}

func main() {
	fmt.Println("attacker model: physical access to DRAM while the platform")
	fmt.Println("sleeps in ODRIPS (context parked in the SGX-protected region)")
	fmt.Println()

	// Attack 1: flip one ciphertext bit in the context region.
	attack("bit-flip in ciphertext", func(p *odrips.Platform) error {
		mem := p.Mem()
		if err := mem.SetState(dram.Active); err != nil {
			return err
		}
		addr := p.CtxRegion().Base + 17*dram.BlockSize
		blk, err := mem.Read(addr, dram.BlockSize)
		if err != nil {
			return err
		}
		blk[0] ^= 0x01
		if err := mem.Write(addr, blk); err != nil {
			return err
		}
		return mem.SetState(dram.SelfRefresh)
	})

	// Attack 2: corrupt counter-tree metadata instead of data.
	attack("metadata (counter tree)", func(p *odrips.Platform) error {
		mem := p.Mem()
		if err := mem.SetState(dram.Active); err != nil {
			return err
		}
		// Metadata sits above the data blocks inside the region.
		addr := p.CtxRegion().End() - 2*dram.BlockSize
		blk, err := mem.Read(addr, dram.BlockSize)
		if err != nil {
			return err
		}
		blk[33] ^= 0xFF
		if err := mem.Write(addr, blk); err != nil {
			return err
		}
		return mem.SetState(dram.SelfRefresh)
	})

	// Attack 3: wholesale region rollback — restore a complete, internally
	// consistent snapshot of data AND metadata captured earlier. Only the
	// on-chip root counter can catch this.
	attack("full-region rollback", func(p *odrips.Platform) error {
		mem := p.Mem()
		if err := mem.SetState(dram.Active); err != nil {
			return err
		}
		region := p.CtxRegion()
		snapshot, err := mem.Read(region.Base, int(region.Size))
		if err != nil {
			return err
		}
		// "Earlier snapshot": zero a version counter region to emulate the
		// state from before the most recent save. Any stale-but-consistent
		// image fails the same way: its top-node MAC was sealed under an
		// older on-chip root counter.
		for i := len(snapshot) - 4*dram.BlockSize; i < len(snapshot); i++ {
			snapshot[i] = 0
		}
		if err := mem.Write(region.Base, snapshot); err != nil {
			return err
		}
		return mem.SetState(dram.SelfRefresh)
	})

	fmt.Println()
	fmt.Println("a clean run for comparison:")
	p, err := odrips.NewPlatform(odrips.ODRIPSConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.RunCycles(odrips.FixedCycles(1, 0, 30*odrips.Second))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s context verified %d time(s), %.2f mW average\n",
		"no attack", res.CtxVerified, res.AvgPowerMW)
}
