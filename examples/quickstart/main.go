// Quickstart: build the baseline DRIPS platform and the ODRIPS platform,
// run the same connected-standby workload on both, and compare — the
// paper's headline experiment in ~40 lines.
package main

import (
	"fmt"
	"log"

	"odrips"
)

func main() {
	// Identical deterministic workload: five 30-second idle periods
	// separated by kernel-maintenance bursts (Fig. 2).
	wl := odrips.FixedCycles(5, 0, 30*odrips.Second)

	run := func(cfg odrips.Config) odrips.Result {
		p, err := odrips.NewPlatform(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.RunCycles(wl)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(odrips.DefaultConfig())
	opt := run(odrips.ODRIPSConfig())

	fmt.Printf("baseline DRIPS:  %6.2f mW average (%6.2f mW while idle)\n",
		base.AvgPowerMW, base.IdlePowerMW())
	fmt.Printf("ODRIPS:          %6.2f mW average (%6.2f mW while idle)\n",
		opt.AvgPowerMW, opt.IdlePowerMW())
	fmt.Printf("reduction:       %.1f%%   (paper: 22%%)\n",
		100*(base.AvgPowerMW-opt.AvgPowerMW)/base.AvgPowerMW)

	be, err := odrips.BreakEven(base.CycleEnergy, opt.CycleEnergy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("break-even:      %.2f ms of idle residency (paper: 6.5 ms)\n", be.Milliseconds())
	fmt.Printf("context save:    %v to SGX-protected DRAM (paper: ~18 us)\n", opt.CtxSave)
	fmt.Printf("context restore: %v, verified %d times (paper: ~13 us)\n",
		opt.CtxRestore, opt.CtxVerified)
	fmt.Printf("timer drift:     %.2f ppb across hand-overs (target: ~1 ppb)\n", opt.TimerDriftPPB)
}
