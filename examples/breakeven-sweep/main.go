// Break-even sweep: reproduce the paper's §7 methodology. Sweep the DRIPS
// residency and find, for each technique, the minimum idle time at which
// the optimized state beats baseline DRIPS — the blue line of Fig. 6(a).
package main

import (
	"fmt"
	"log"

	"odrips"
)

func main() {
	fmt.Println("residency sweep: forcing the deepest state at each residency")
	fmt.Println("(the paper sweeps 0.6 ms – 1 s at 0.1 ms; this example uses the")
	fmt.Println(" fast grid over the crossover region — run odrips-bench -sweep")
	fmt.Println(" paper for the full grid)")
	fmt.Println()

	r, err := odrips.Fig6a(odrips.DefaultSweep())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %10s %12s %14s %14s\n",
		"technique", "avg power", "reduction", "analytic BE", "sweep BE")
	paper := map[string]string{
		"WAKE-UP-OFF":  "6.6 ms",
		"AON-IO-GATE":  "6.3 ms",
		"CTX-SGX-DRAM": "7.4 ms",
		"ODRIPS":       "6.5 ms",
	}
	for _, row := range r.Rows {
		if row.ReductionPct == 0 {
			fmt.Printf("%-14s %7.2f mW %12s %14s %14s\n", row.Name, row.AvgMW, "—", "—", "—")
			continue
		}
		sweepBE := "—"
		if row.SweepBE > 0 {
			sweepBE = fmt.Sprintf("%.1f ms", row.SweepBE.Milliseconds())
		}
		fmt.Printf("%-14s %7.2f mW %11.1f%% %11.2f ms %14s   (paper: %s)\n",
			row.Name, row.AvgMW, row.ReductionPct,
			row.BreakEven.Milliseconds(), sweepBE, paper[row.Name])
	}

	fmt.Println()
	fmt.Println("interpretation: connected standby idles ~30 s per cycle, three")
	fmt.Println("orders of magnitude above every break-even point, so ODRIPS is")
	fmt.Println("strictly superior for this workload (paper §8).")
}
