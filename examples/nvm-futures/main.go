// NVM futures: the paper's §8.3 exploration. What happens to connected-
// standby power when the processor context lives in on-chip eMRAM, or when
// main memory itself becomes non-volatile PCM and self-refresh disappears?
package main

import (
	"fmt"
	"log"

	"odrips"
	"odrips/internal/dram"
)

func main() {
	wl := odrips.FixedCycles(3, 0, 30*odrips.Second)

	run := func(cfg odrips.Config) odrips.Result {
		p, err := odrips.NewPlatform(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.RunCycles(wl)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(odrips.DefaultConfig())
	odripsRes := run(odrips.ODRIPSConfig())

	mramCfg := odrips.DefaultConfig().WithTechniques(odrips.WakeUpOff | odrips.AONIOGate)
	mramCfg.CtxInEMRAM = true
	mram := run(mramCfg)

	pcmCfg := odrips.ODRIPSConfig()
	pcmCfg.MainMemory = dram.PCM
	pcm := run(pcmCfg)

	fmt.Printf("%-14s %10s %11s %12s %12s %13s\n",
		"design", "avg power", "vs baseline", "idle power", "ctx save", "ctx restore")
	show := func(name string, r odrips.Result) {
		delta := "—"
		if r.AvgPowerMW != base.AvgPowerMW {
			delta = fmt.Sprintf("-%.1f%%", 100*(base.AvgPowerMW-r.AvgPowerMW)/base.AvgPowerMW)
		}
		fmt.Printf("%-14s %7.2f mW %11s %9.2f mW %12v %13v\n",
			name, r.AvgPowerMW, delta, r.IdlePowerMW(), r.CtxSave, r.CtxRestore)
	}
	show("Baseline", base)
	show("ODRIPS", odripsRes)
	show("ODRIPS-MRAM", mram)
	show("ODRIPS-PCM", pcm)

	fmt.Println()
	beO, err := odrips.BreakEven(base.CycleEnergy, odripsRes.CycleEnergy)
	if err != nil {
		log.Fatal(err)
	}
	beM, err := odrips.BreakEven(base.CycleEnergy, mram.CycleEnergy)
	if err != nil {
		log.Fatal(err)
	}
	beP, err := odrips.BreakEven(base.CycleEnergy, pcm.CycleEnergy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("break-even residencies: ODRIPS %.1f ms, MRAM %.1f ms (lowest, §8.3), PCM %.1f ms\n",
		beO.Milliseconds(), beM.Milliseconds(), beP.Milliseconds())
	fmt.Println()
	fmt.Println("paper: ODRIPS-MRAM sits slightly below ODRIPS (context never")
	fmt.Println("leaves the die); ODRIPS-PCM cuts baseline average power ~37%")
	fmt.Println("because non-volatile main memory needs no self-refresh and no")
	fmt.Println("CKE drive — at the cost of ~5x slower context saves.")
}
