// Connected-standby overnight scenario: the workload the paper's
// introduction motivates. A tablet is left on standby overnight — idle but
// connected, taking periodic kernel-maintenance wakes plus occasional
// network and thermal events — and the question is how much battery each
// DRIPS design burns by morning.
package main

import (
	"fmt"
	"log"

	"odrips"
	"odrips/internal/battery"
)

const nightHrs = 8.0

func main() {
	// One hour of realistic connected standby (~120 cycles with jittered
	// 30 s idle windows and a sprinkling of external/thermal wakes);
	// results extrapolate linearly to the full night.
	const cyclesPerHour = 120

	pack := battery.Tablet()
	fmt.Printf("overnight standby: %.0f h on a %.1f Wh usable pack (2.5%%/month self-discharge)\n\n",
		nightHrs, pack.UsableMWh()/1000)
	fmt.Printf("%-14s %10s %12s %14s %12s\n",
		"design", "avg power", "night drain", "battery used", "wakes")

	type scenario struct {
		name string
		cfg  odrips.Config
	}
	scenarios := []scenario{
		{"Baseline", odrips.DefaultConfig()},
		{"ODRIPS", odrips.ODRIPSConfig()},
	}
	var baseMWh float64
	for i, sc := range scenarios {
		p, err := odrips.NewPlatform(sc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.RunCycles(odrips.ConnectedStandby(cyclesPerHour, 2026))
		if err != nil {
			log.Fatal(err)
		}
		nightMWh := res.AvgPowerMW * nightHrs
		pctOfBattery, err := pack.DrainPct(res.AvgPowerMW, nightHrs)
		if err != nil {
			log.Fatal(err)
		}
		var wakes int
		for _, n := range res.WakeCounts {
			wakes += int(n)
		}
		fmt.Printf("%-14s %7.2f mW %9.1f mWh %12.2f%% %9d/h\n",
			sc.name, res.AvgPowerMW, nightMWh, pctOfBattery, wakes)
		if i == 0 {
			baseMWh = nightMWh
		} else {
			fmt.Printf("%-14s %s%.1f mWh saved per night (%.1f%%)\n",
				"", "→ ", baseMWh-nightMWh, 100*(baseMWh-nightMWh)/baseMWh)
		}
	}

	// How many nights of standby does the battery alone sustain?
	fmt.Println()
	for _, sc := range scenarios {
		p, err := odrips.NewPlatform(sc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.RunCycles(odrips.ConnectedStandby(cyclesPerHour, 2026))
		if err != nil {
			log.Fatal(err)
		}
		days, err := pack.StandbyDays(res.AvgPowerMW)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s a full charge sustains %.0f days of connected standby\n", sc.name, days)
	}
}
